/**
 * @file
 * Fingerprint sensor placement optimization (Sec. IV-A, challenge 2).
 *
 * Full-screen sensor coverage is ruled out by cost, power and scan
 * time, so a few small tiles must be placed where touches actually
 * land. Given a touch-density map (from touch::UserBehavior or a
 * multi-user mixture), the optimizers below choose non-overlapping
 * tile positions maximizing the probability that a natural touch
 * falls on a sensor. Greedy and simulated-annealing optimizers are
 * provided along with uniform-grid and random baselines for the
 * ablation bench.
 */

#ifndef TRUST_PLACEMENT_PLACEMENT_HH
#define TRUST_PLACEMENT_PLACEMENT_HH

#include <vector>

#include "core/grid.hh"
#include "core/rng.hh"
#include "hw/biometric_screen.hh"
#include "touch/ui.hh"

namespace trust::placement {

/** The placement problem instance. */
struct PlacementProblem
{
    touch::ScreenSpec screen;
    core::Grid<double> density; ///< Touch density; cells sum to 1.
    double sensorSideMm = 4.0;  ///< Square tile side.
    int sensorCount = 4;        ///< Tiles to place.
};

/** A solution: tile regions in screen mm. */
struct Placement
{
    std::vector<core::Rect> tiles;
};

/**
 * Probability that a touch drawn from @p density lands on a tile
 * (density-mass capture fraction).
 */
double evaluateCoverage(const Placement &placement,
                        const PlacementProblem &problem);

/** True if no tile overlaps another or leaves the screen. */
bool isFeasible(const Placement &placement,
                const PlacementProblem &problem);

/**
 * Greedy: repeatedly place the tile that captures the most residual
 * density mass, on a fine candidate grid, without overlap.
 */
Placement placeGreedy(const PlacementProblem &problem,
                      double step_mm = 1.0);

/**
 * Simulated annealing starting from the greedy solution: joint
 * refinement can beat greedy when hot spots are larger than a tile.
 */
Placement placeAnnealing(const PlacementProblem &problem,
                         core::Rng &rng, int iterations = 20000,
                         double step_mm = 1.0);

/** Baseline: tiles on a uniform grid, ignoring the density. */
Placement placeUniformGrid(const PlacementProblem &problem);

/** Baseline: uniformly random non-overlapping tiles. */
Placement placeRandom(const PlacementProblem &problem, core::Rng &rng,
                      int max_attempts = 1000);

/**
 * Convert a placement into hardware tiles for BiometricTouchscreen.
 * Each tile gets a FLock transparent-TFT spec sized to the tile.
 */
std::vector<hw::PlacedSensor> toPlacedSensors(
    const Placement &placement);

} // namespace trust::placement

#endif // TRUST_PLACEMENT_PLACEMENT_HH
