#include "touch/ui.hh"

#include <cstdio>

namespace trust::touch {

const UiElement *
UiLayout::hitTest(const core::Vec2 &p) const
{
    for (const auto &e : elements)
        if (e.rect.contains(p))
            return &e;
    return nullptr;
}

const UiElement *
UiLayout::find(const std::string &id) const
{
    for (const auto &e : elements)
        if (e.id == id)
            return &e;
    return nullptr;
}

UiLayout
homeScreenLayout(const ScreenSpec &screen)
{
    UiLayout layout;
    layout.name = "home";
    layout.screen = screen;

    const double w = screen.widthMm, h = screen.heightMm;

    // Status strip (rarely touched).
    layout.elements.push_back(
        {"status", {0.0, 0.0, w, 0.06 * h}, 0.2, false});

    // 4x5 app grid over the middle of the screen.
    const double grid_top = 0.10 * h, grid_bottom = 0.80 * h;
    const double cell_h = (grid_bottom - grid_top) / 5.0;
    const double cell_w = w / 4.0;
    char id[32];
    for (int row = 0; row < 5; ++row) {
        for (int col = 0; col < 4; ++col) {
            std::snprintf(id, sizeof(id), "app_%d_%d", row, col);
            // Icons occupy the centre of each cell.
            const double x0 = col * cell_w + 0.2 * cell_w;
            const double y0 = grid_top + row * cell_h + 0.2 * cell_h;
            layout.elements.push_back(
                {id,
                 {x0, y0, x0 + 0.6 * cell_w, y0 + 0.6 * cell_h},
                 1.0,
                 false});
        }
    }

    // Dock: 4 high-traffic launcher icons at the bottom.
    const double dock_top = 0.86 * h;
    for (int col = 0; col < 4; ++col) {
        std::snprintf(id, sizeof(id), "dock_%d", col);
        const double x0 = col * cell_w + 0.15 * cell_w;
        layout.elements.push_back(
            {id,
             {x0, dock_top, x0 + 0.7 * cell_w, 0.97 * h},
             4.0,
             false});
    }
    return layout;
}

UiLayout
keyboardLayout(const ScreenSpec &screen)
{
    UiLayout layout;
    layout.name = "keyboard";
    layout.screen = screen;

    const double w = screen.widthMm, h = screen.heightMm;

    // Conversation / text area (scrolled occasionally).
    layout.elements.push_back(
        {"text_area", {0.0, 0.05 * h, w, 0.55 * h}, 0.6, false});

    // QWERTY rows on the lower third: 10/9/7 keys.
    const int keys_per_row[3] = {10, 9, 7};
    const double kb_top = 0.62 * h;
    const double row_h = 0.09 * h;
    char id[32];
    for (int row = 0; row < 3; ++row) {
        const int n = keys_per_row[row];
        const double key_w = w / n;
        for (int k = 0; k < n; ++k) {
            std::snprintf(id, sizeof(id), "key_%d_%d", row, k);
            layout.elements.push_back(
                {id,
                 {k * key_w, kb_top + row * row_h, (k + 1) * key_w,
                  kb_top + (row + 1) * row_h},
                 5.0,
                 false});
        }
    }

    // Space bar and send button.
    layout.elements.push_back(
        {"space",
         {0.2 * w, kb_top + 3 * row_h, 0.7 * w, kb_top + 4 * row_h},
         8.0,
         false});
    layout.elements.push_back(
        {"send",
         {0.74 * w, kb_top + 3 * row_h, 0.98 * w, kb_top + 4 * row_h},
         3.0,
         true});
    return layout;
}

UiLayout
browserLayout(const ScreenSpec &screen)
{
    UiLayout layout;
    layout.name = "browser";
    layout.screen = screen;

    const double w = screen.widthMm, h = screen.heightMm;
    layout.elements.push_back(
        {"url_bar", {0.05 * w, 0.02 * h, 0.95 * w, 0.08 * h}, 1.0,
         false});
    layout.elements.push_back(
        {"content", {0.0, 0.10 * h, w, 0.82 * h}, 5.0, false});
    layout.elements.push_back(
        {"nav_back", {0.02 * w, 0.88 * h, 0.18 * w, 0.97 * h}, 2.0,
         false});
    layout.elements.push_back(
        {"nav_forward", {0.22 * w, 0.88 * h, 0.38 * w, 0.97 * h}, 0.8,
         false});
    layout.elements.push_back(
        {"login_button", {0.55 * w, 0.88 * h, 0.95 * w, 0.97 * h}, 1.5,
         true});
    return layout;
}

UiLayout
lockScreenLayout(const ScreenSpec &screen)
{
    UiLayout layout;
    layout.name = "lock";
    layout.screen = screen;

    const double w = screen.widthMm, h = screen.heightMm;
    // One critical unlock button, centred in the lower half where a
    // fingerprint sensor is provisioned.
    layout.elements.push_back(
        {"unlock",
         {0.35 * w, 0.62 * h, 0.65 * w, 0.75 * h},
         10.0,
         true});
    return layout;
}

} // namespace trust::touch
