/**
 * @file
 * Per-user touch behaviour model.
 *
 * Substitutes for the paper's HTC user study (Fig. 7): touch-down
 * points are drawn from a Gaussian-mixture of hot spots anchored at
 * UI elements, weighted by per-user app-usage habits. Different
 * users share structural hot spots (keyboard, dock, nav bar) but
 * differ in weights and precision — exactly the overlap-plus-
 * variation structure the paper reports and the placement optimizer
 * exploits.
 */

#ifndef TRUST_TOUCH_BEHAVIOR_HH
#define TRUST_TOUCH_BEHAVIOR_HH

#include <cstdint>
#include <vector>

#include "core/grid.hh"
#include "core/rng.hh"
#include "touch/event.hh"
#include "touch/ui.hh"

namespace trust::touch {

/** One Gaussian hot spot of the touch mixture. */
struct HotSpot
{
    core::Vec2 mean;      ///< Centre in screen mm.
    double sigmaX = 2.0;  ///< Horizontal spread (mm).
    double sigmaY = 2.0;  ///< Vertical spread (mm).
    double weight = 1.0;  ///< Mixture weight (unnormalized).
    std::string target;   ///< UI element the spot is anchored to.
};

/** Gesture mix of a user (probabilities sum to 1). */
struct GestureMix
{
    double tap = 0.70;
    double longPress = 0.05;
    double swipe = 0.20;
    double zoom = 0.05;
};

/** A user's stochastic touch model. */
class UserBehavior
{
  public:
    /**
     * Build a behaviour model for one user over a set of layouts.
     * @param user_seed  identity seed; same seed -> same habits.
     * @param layouts    screens the user spends time on.
     */
    static UserBehavior forUser(std::uint64_t user_seed,
                                const std::vector<UiLayout> &layouts);

    const std::vector<HotSpot> &hotSpots() const { return spots_; }
    const ScreenSpec &screen() const { return screen_; }
    const GestureMix &gestures() const { return gestureMix_; }
    int enrolledFingers() const { return enrolledFingers_; }

    /** Sample one touch event at simulated time @p now. */
    TouchEvent sampleTouch(core::Rng &rng, core::Tick now) const;

    /**
     * Empirical touch density over a rows x cols screen grid from
     * @p samples touches; cells sum to 1 (Fig. 7 reproduction).
     */
    core::Grid<double> densityMap(int rows, int cols, int samples,
                                  core::Rng &rng) const;

  private:
    ScreenSpec screen_;
    std::vector<HotSpot> spots_;
    std::vector<double> weights_; // cached for weightedIndex
    GestureMix gestureMix_;
    int enrolledFingers_ = 2;
    double primaryFingerBias_ = 0.8;
};

/**
 * Fraction of probability mass two density maps share
 * (histogram intersection in [0, 1]); quantifies the hot-spot
 * overlap between users that Fig. 7 shows qualitatively.
 */
double densityOverlap(const core::Grid<double> &a,
                      const core::Grid<double> &b);

/** Render a density map as an ASCII heat map (for bench output). */
std::string renderDensityAscii(const core::Grid<double> &density,
                               int levels = 6);

} // namespace trust::touch

#endif // TRUST_TOUCH_BEHAVIOR_HH
