#include "touch/behavioral_auth.hh"

#include <algorithm>
#include <cmath>

#include "core/logging.hh"

namespace trust::touch {

namespace {
constexpr double kMinVariance = 1e-4;
constexpr double kLog2Pi = 1.8378770664093453;
} // namespace

TouchFeatures
extractFeatures(const TouchEvent &event)
{
    TouchFeatures f;
    f.values[0] = event.position.x;
    f.values[1] = event.position.y;
    f.values[2] = event.speed;
    f.values[3] =
        std::log1p(core::toMilliseconds(event.duration));
    f.values[4] = static_cast<double>(event.gesture);
    return f;
}

BehaviorProfile
BehaviorProfile::train(const std::vector<TouchEvent> &events)
{
    TRUST_ASSERT(events.size() >= 10,
                 "BehaviorProfile: need at least 10 events");
    BehaviorProfile profile;
    profile.count_ = events.size();

    for (const auto &event : events) {
        const TouchFeatures f = extractFeatures(event);
        for (int i = 0; i < TouchFeatures::kCount; ++i)
            profile.mean_[static_cast<std::size_t>(i)] +=
                f.values[static_cast<std::size_t>(i)];
    }
    for (auto &m : profile.mean_)
        m /= static_cast<double>(events.size());

    for (const auto &event : events) {
        const TouchFeatures f = extractFeatures(event);
        for (int i = 0; i < TouchFeatures::kCount; ++i) {
            const double d =
                f.values[static_cast<std::size_t>(i)] -
                profile.mean_[static_cast<std::size_t>(i)];
            profile.variance_[static_cast<std::size_t>(i)] += d * d;
        }
    }
    for (auto &v : profile.variance_)
        v = std::max(kMinVariance,
                     v / static_cast<double>(events.size()));
    return profile;
}

double
BehaviorProfile::logLikelihood(const TouchEvent &event) const
{
    TRUST_ASSERT(count_ > 0, "BehaviorProfile: untrained");
    const TouchFeatures f = extractFeatures(event);
    double ll = 0.0;
    for (int i = 0; i < TouchFeatures::kCount; ++i) {
        const double v = variance_[static_cast<std::size_t>(i)];
        const double d = f.values[static_cast<std::size_t>(i)] -
                         mean_[static_cast<std::size_t>(i)];
        ll += -0.5 * (kLog2Pi + std::log(v) + d * d / v);
    }
    return ll / TouchFeatures::kCount;
}

BehavioralAuthenticator::BehavioralAuthenticator(
    BehaviorProfile profile, int window, double threshold)
    : profile_(std::move(profile)), window_(window),
      threshold_(threshold)
{
    TRUST_ASSERT(window > 0, "BehavioralAuthenticator: bad window");
}

double
BehavioralAuthenticator::record(const TouchEvent &event)
{
    scores_.push_back(profile_.logLikelihood(event));
    if (static_cast<int>(scores_.size()) > window_)
        scores_.pop_front();
    double sum = 0.0;
    for (double s : scores_)
        sum += s;
    return sum / static_cast<double>(scores_.size());
}

bool
BehavioralAuthenticator::flagged() const
{
    if (static_cast<int>(scores_.size()) < window_)
        return false;
    double sum = 0.0;
    for (double s : scores_)
        sum += s;
    return sum / static_cast<double>(scores_.size()) < threshold_;
}

void
BehavioralAuthenticator::reset()
{
    scores_.clear();
}

double
BehavioralAuthenticator::calibrate(
    const BehaviorProfile &profile,
    const std::vector<TouchEvent> &genuine, int window,
    double target_frr)
{
    TRUST_ASSERT(static_cast<int>(genuine.size()) >= window,
                 "calibrate: not enough genuine events");
    // Windowed means over the genuine stream.
    std::vector<double> means;
    std::deque<double> w;
    for (const auto &event : genuine) {
        w.push_back(profile.logLikelihood(event));
        if (static_cast<int>(w.size()) > window)
            w.pop_front();
        if (static_cast<int>(w.size()) == window) {
            double sum = 0.0;
            for (double s : w)
                sum += s;
            means.push_back(sum / window);
        }
    }
    std::sort(means.begin(), means.end());
    const auto idx = static_cast<std::size_t>(
        target_frr * static_cast<double>(means.size()));
    return means[std::min(idx, means.size() - 1)];
}

} // namespace trust::touch
