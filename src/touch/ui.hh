/**
 * @file
 * Screen geometry and UI layouts.
 *
 * Touch behaviour is driven by what is on screen: keyboards pull
 * touches to the bottom rows, navigation bars to screen edges, and
 * so on. The layouts below model a 2012-era smartphone (the paper's
 * Fig. 7 traces came from an HTC device) and let the placement
 * optimizer exploit the resulting hot spots. The paper's defence of
 * placing critical buttons over sensor regions (Sec. IV-A) is
 * modeled by the `critical` flag.
 */

#ifndef TRUST_TOUCH_UI_HH
#define TRUST_TOUCH_UI_HH

#include <optional>
#include <string>
#include <vector>

#include "core/geometry.hh"

namespace trust::touch {

/** Physical screen description (2012-era 4.3" phone by default). */
struct ScreenSpec
{
    double widthMm = 53.0;
    double heightMm = 94.0;

    core::Rect bounds() const { return {0.0, 0.0, widthMm, heightMm}; }
};

/** A tappable region of the UI. */
struct UiElement
{
    std::string id;
    core::Rect rect;       ///< Region in screen mm.
    double attraction = 1.0; ///< Relative touch likelihood weight.
    bool critical = false;  ///< Security-critical (login, confirm).
};

/** A named UI layout: a set of elements over a screen. */
struct UiLayout
{
    std::string name;
    ScreenSpec screen;
    std::vector<UiElement> elements;

    /** First element whose rect contains @p p, if any. */
    const UiElement *hitTest(const core::Vec2 &p) const;

    /** Element lookup by id; nullptr if absent. */
    const UiElement *find(const std::string &id) const;
};

/**
 * Home-screen layout: app grid (4x5 icons), bottom dock and status
 * strip.
 */
UiLayout homeScreenLayout(const ScreenSpec &screen = {});

/**
 * Messaging layout: QWERTY keyboard on the lower third, text area,
 * send button.
 */
UiLayout keyboardLayout(const ScreenSpec &screen = {});

/**
 * Browser layout: content area (scroll), URL bar, back/forward nav.
 */
UiLayout browserLayout(const ScreenSpec &screen = {});

/**
 * Lock-screen layout: a single critical unlock button placed where
 * a fingerprint sensor is guaranteed (Fig. 6 unlock flow).
 */
UiLayout lockScreenLayout(const ScreenSpec &screen = {});

} // namespace trust::touch

#endif // TRUST_TOUCH_UI_HH
