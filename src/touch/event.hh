/**
 * @file
 * Touch event model: what the capacitive panel reports to the FLock
 * touchscreen controller for each user-device interaction.
 */

#ifndef TRUST_TOUCH_EVENT_HH
#define TRUST_TOUCH_EVENT_HH

#include <cstdint>
#include <string>

#include "core/geometry.hh"
#include "core/sim_clock.hh"

namespace trust::touch {

/** Gesture category of a touch interaction. */
enum class GestureType : std::uint8_t
{
    Tap = 0,       ///< Short stationary press (buttons, keys).
    LongPress = 1, ///< Extended stationary press.
    Swipe = 2,     ///< Fast directional stroke (scroll, flick).
    Zoom = 3,      ///< Pinch gesture (two fingers; one sampled here).
};

/** One touch interaction on the screen. */
struct TouchEvent
{
    core::Vec2 position;    ///< Touch-down point in screen mm.
    core::Tick time = 0;    ///< Touch-down simulated time.
    core::Tick duration = 0; ///< Contact duration.
    double speed = 0.0;      ///< Normalized finger speed in [0, 1].
    GestureType gesture = GestureType::Tap;
    int fingerIndex = 0;     ///< Which enrolled finger touched (0-based).
    std::string target;      ///< UI element hit ("" if none).
};

} // namespace trust::touch

#endif // TRUST_TOUCH_EVENT_HH
