#include "touch/behavior.hh"

#include <algorithm>
#include <cmath>

#include "core/logging.hh"

namespace trust::touch {

UserBehavior
UserBehavior::forUser(std::uint64_t user_seed,
                      const std::vector<UiLayout> &layouts)
{
    TRUST_ASSERT(!layouts.empty(), "UserBehavior: need layouts");
    core::Rng rng(user_seed ^ 0x5bd1e995u);

    UserBehavior behavior;
    behavior.screen_ = layouts.front().screen;

    // Per-user app-usage mix over the provided layouts.
    std::vector<double> layout_weight(layouts.size());
    for (auto &w : layout_weight)
        w = rng.uniform(0.3, 1.0);

    // Per-user motor traits.
    const double precision = rng.uniform(0.7, 1.4); // sigma scale
    const core::Vec2 hand_bias{rng.normal(0.0, 1.5),
                               rng.normal(0.0, 2.0)};

    for (std::size_t li = 0; li < layouts.size(); ++li) {
        const auto &layout = layouts[li];
        for (const auto &element : layout.elements) {
            HotSpot spot;
            spot.mean = element.rect.center() + hand_bias;
            spot.sigmaX =
                std::max(0.8, element.rect.width() / 4.0) * precision;
            spot.sigmaY =
                std::max(0.8, element.rect.height() / 4.0) * precision;
            // Habit jitter: not everyone uses every key equally.
            spot.weight = element.attraction * layout_weight[li] *
                          rng.uniform(0.4, 1.6);
            spot.target = element.id;
            behavior.spots_.push_back(spot);
        }
    }

    behavior.weights_.reserve(behavior.spots_.size());
    for (const auto &s : behavior.spots_)
        behavior.weights_.push_back(s.weight);

    // Gesture habits.
    GestureMix mix;
    mix.tap = rng.uniform(0.55, 0.75);
    mix.swipe = rng.uniform(0.15, 0.30);
    mix.longPress = rng.uniform(0.02, 0.08);
    mix.zoom = std::max(
        0.0, 1.0 - mix.tap - mix.swipe - mix.longPress);
    behavior.gestureMix_ = mix;

    behavior.enrolledFingers_ = rng.chance(0.3) ? 3 : 2;
    behavior.primaryFingerBias_ = rng.uniform(0.7, 0.9);
    return behavior;
}

TouchEvent
UserBehavior::sampleTouch(core::Rng &rng, core::Tick now) const
{
    TRUST_ASSERT(!spots_.empty(), "UserBehavior: no hot spots");
    const auto &spot = spots_[rng.weightedIndex(weights_)];

    TouchEvent event;
    event.time = now;
    event.position = screen_.bounds().clamp(
        {rng.normal(spot.mean.x, spot.sigmaX),
         rng.normal(spot.mean.y, spot.sigmaY)});
    event.target = spot.target;

    // Gesture type drives speed and duration.
    const double u = rng.uniform();
    if (u < gestureMix_.tap) {
        event.gesture = GestureType::Tap;
        event.speed = std::clamp(rng.normal(0.12, 0.06), 0.0, 1.0);
        event.duration = core::milliseconds(
            static_cast<std::uint64_t>(rng.uniform(60.0, 160.0)));
    } else if (u < gestureMix_.tap + gestureMix_.swipe) {
        event.gesture = GestureType::Swipe;
        event.speed = std::clamp(rng.normal(0.70, 0.15), 0.0, 1.0);
        event.duration = core::milliseconds(
            static_cast<std::uint64_t>(rng.uniform(120.0, 400.0)));
    } else if (u < gestureMix_.tap + gestureMix_.swipe +
                       gestureMix_.longPress) {
        event.gesture = GestureType::LongPress;
        event.speed = std::clamp(rng.normal(0.05, 0.03), 0.0, 1.0);
        event.duration = core::milliseconds(
            static_cast<std::uint64_t>(rng.uniform(500.0, 1200.0)));
    } else {
        event.gesture = GestureType::Zoom;
        event.speed = std::clamp(rng.normal(0.40, 0.10), 0.0, 1.0);
        event.duration = core::milliseconds(
            static_cast<std::uint64_t>(rng.uniform(250.0, 700.0)));
    }

    event.fingerIndex =
        rng.chance(primaryFingerBias_)
            ? 0
            : static_cast<int>(
                  rng.uniformInt(1, enrolledFingers_ - 1));
    return event;
}

core::Grid<double>
UserBehavior::densityMap(int rows, int cols, int samples,
                         core::Rng &rng) const
{
    core::Grid<double> density(rows, cols, 0.0);
    const double cell_w = screen_.widthMm / cols;
    const double cell_h = screen_.heightMm / rows;
    for (int i = 0; i < samples; ++i) {
        const TouchEvent event = sampleTouch(rng, 0);
        int r = static_cast<int>(event.position.y / cell_h);
        int c = static_cast<int>(event.position.x / cell_w);
        r = std::clamp(r, 0, rows - 1);
        c = std::clamp(c, 0, cols - 1);
        density(r, c) += 1.0;
    }
    for (auto &v : density.data())
        v /= samples;
    return density;
}

double
densityOverlap(const core::Grid<double> &a, const core::Grid<double> &b)
{
    TRUST_ASSERT(a.rows() == b.rows() && a.cols() == b.cols(),
                 "densityOverlap: shape mismatch");
    double overlap = 0.0;
    for (std::size_t i = 0; i < a.data().size(); ++i)
        overlap += std::min(a.data()[i], b.data()[i]);
    return overlap;
}

std::string
renderDensityAscii(const core::Grid<double> &density, int levels)
{
    static const char ramp[] = " .:-=+*#%@";
    const int ramp_len = static_cast<int>(sizeof(ramp)) - 2;
    levels = std::clamp(levels, 2, ramp_len + 1);

    double max_v = 0.0;
    for (double v : density.data())
        max_v = std::max(max_v, v);

    std::string out;
    for (int r = 0; r < density.rows(); ++r) {
        for (int c = 0; c < density.cols(); ++c) {
            int level = 0;
            if (max_v > 0.0) {
                level = static_cast<int>(density(r, c) / max_v *
                                         (levels - 1) + 0.5);
            }
            out.push_back(ramp[std::min(level, ramp_len)]);
        }
        out.push_back('\n');
    }
    return out;
}

} // namespace trust::touch
