#include "touch/session.hh"

#include <cmath>

#include "core/logging.hh"

namespace trust::touch {

std::vector<TouchEvent>
generateSession(const UserBehavior &behavior, core::Rng &rng,
                core::Tick start, int touches,
                const SessionParams &params)
{
    TRUST_ASSERT(touches >= 0, "generateSession: negative touch count");
    std::vector<TouchEvent> events;
    events.reserve(static_cast<std::size_t>(touches));

    core::Tick now = start;
    int burst_remaining = 0;
    for (int i = 0; i < touches; ++i) {
        const double gap_ms =
            burst_remaining > 0
                ? rng.exponential(1.0 / params.burstGapMs)
                : rng.exponential(1.0 / params.meanGapMs);
        now += core::milliseconds(
            static_cast<std::uint64_t>(std::ceil(gap_ms)) + 1);

        TouchEvent event = behavior.sampleTouch(rng, now);
        events.push_back(event);
        now += event.duration;

        if (burst_remaining > 0) {
            --burst_remaining;
        } else if (rng.chance(params.burstProbability)) {
            burst_remaining = 1 + static_cast<int>(
                rng.exponential(1.0 / params.meanBurstLength));
        }
    }
    return events;
}

} // namespace trust::touch
