/**
 * @file
 * Session workload generation: time-ordered streams of touch events
 * driving the local and remote continuous-authentication
 * simulations.
 */

#ifndef TRUST_TOUCH_SESSION_HH
#define TRUST_TOUCH_SESSION_HH

#include <vector>

#include "core/rng.hh"
#include "touch/behavior.hh"

namespace trust::touch {

/** Inter-arrival and burst structure of a usage session. */
struct SessionParams
{
    /** Mean inter-touch gap in milliseconds (exponential). */
    double meanGapMs = 1200.0;

    /** Probability a touch starts a rapid burst (typing). */
    double burstProbability = 0.25;

    /** Mean burst length in touches. */
    double meanBurstLength = 6.0;

    /** Mean inter-touch gap inside a burst (ms). */
    double burstGapMs = 280.0;
};

/**
 * Generate a session of @p touches events starting at @p start.
 * Events are strictly time-ordered; bursts model typing runs.
 */
std::vector<TouchEvent> generateSession(const UserBehavior &behavior,
                                        core::Rng &rng,
                                        core::Tick start, int touches,
                                        const SessionParams &params = {});

} // namespace trust::touch

#endif // TRUST_TOUCH_SESSION_HH
