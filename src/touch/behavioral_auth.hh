/**
 * @file
 * Behavioural continuous authentication baseline.
 *
 * The paper's related work (Sec. V) covers implicit authentication
 * from touch *behaviour* — gesture dynamics [8], keystroke dynamics
 * [17][11], multi-sensor behaviour [18][19] — and argues fingerprint
 * biometrics are stronger. This module implements that baseline so
 * the claim can be measured: a per-user statistical profile over
 * touch features (position, speed, duration, gesture mix) scored
 * with a naive-Bayes Gaussian model and aggregated over a sliding
 * window, exactly the structure of the cited systems.
 */

#ifndef TRUST_TOUCH_BEHAVIORAL_AUTH_HH
#define TRUST_TOUCH_BEHAVIORAL_AUTH_HH

#include <array>
#include <deque>
#include <vector>

#include "touch/event.hh"

namespace trust::touch {

/** Feature vector extracted from one touch event. */
struct TouchFeatures
{
    static constexpr int kCount = 5;

    /** x, y (mm), speed, log-duration (ms), gesture class. */
    std::array<double, kCount> values{};
};

/** Extract the behavioural features of one event. */
TouchFeatures extractFeatures(const TouchEvent &event);

/**
 * A trained per-user behavioural profile: independent Gaussians per
 * feature (naive Bayes), fitted from an enrollment session.
 */
class BehaviorProfile
{
  public:
    /** Fit from enrollment touches; needs at least 10 events. */
    static BehaviorProfile train(const std::vector<TouchEvent> &events);

    /**
     * Average per-feature log-likelihood of an event under the
     * profile (higher = more typical of this user).
     */
    double logLikelihood(const TouchEvent &event) const;

    std::size_t trainedOn() const { return count_; }

  private:
    std::array<double, TouchFeatures::kCount> mean_{};
    std::array<double, TouchFeatures::kCount> variance_{};
    std::size_t count_ = 0;
};

/**
 * Sliding-window behavioural authenticator: scores each touch
 * against the owner profile and flags when the windowed mean
 * log-likelihood drops below a threshold (the [8]/[18] decision
 * structure).
 */
class BehavioralAuthenticator
{
  public:
    /**
     * @param profile   the enrolled owner's profile.
     * @param window    touches aggregated per decision.
     * @param threshold mean log-likelihood below which the session
     *                  is flagged. Calibrate with calibrate().
     */
    BehavioralAuthenticator(BehaviorProfile profile, int window = 8,
                            double threshold = -12.0);

    /** Score one touch; returns the current windowed mean. */
    double record(const TouchEvent &event);

    /** True when the full window scores below the threshold. */
    bool flagged() const;

    /** Clear history. */
    void reset();

    double threshold() const { return threshold_; }

    /**
     * Pick the threshold achieving @p target_far on a held-out
     * genuine sample: the quantile of windowed genuine scores.
     */
    static double calibrate(const BehaviorProfile &profile,
                            const std::vector<TouchEvent> &genuine,
                            int window, double target_frr = 0.05);

  private:
    BehaviorProfile profile_;
    int window_;
    double threshold_;
    std::deque<double> scores_;
};

} // namespace trust::touch

#endif // TRUST_TOUCH_BEHAVIORAL_AUTH_HH
