#include "net/adversary.hh"

namespace trust::net {

Verdict
PassiveSniffer::onMessage(Message &message)
{
    captured_.push_back(message);
    return Verdict::Deliver;
}

ReplayAttacker::ReplayAttacker(Network &network, std::string victim_to,
                               core::Tick delay, int copies)
    : network_(network), victimTo_(std::move(victim_to)), delay_(delay),
      copies_(copies)
{
}

Verdict
ReplayAttacker::onMessage(Message &message)
{
    if (message.to == victimTo_) {
        // Schedule replays of a snapshot of this message.
        const Message snapshot = message;
        for (int i = 1; i <= copies_; ++i) {
            network_.queue().scheduleAfter(
                delay_ * static_cast<core::Tick>(i),
                [this, snapshot] {
                    ++injected_;
                    network_.inject(snapshot);
                });
        }
    }
    return Verdict::Deliver;
}

Tamperer::Tamperer(core::Rng rng, double tamper_probability,
                   int flips_per_message)
    : rng_(rng), probability_(tamper_probability),
      flips_(flips_per_message)
{
}

Verdict
Tamperer::onMessage(Message &message)
{
    if (message.payload.empty() || !rng_.chance(probability_))
        return Verdict::Deliver;
    ++tampered_;
    for (int i = 0; i < flips_; ++i) {
        const auto pos = static_cast<std::size_t>(rng_.uniformInt(
            0, static_cast<std::int64_t>(message.payload.size()) - 1));
        const auto bit = static_cast<std::uint8_t>(
            1u << rng_.uniformInt(0, 7));
        message.payload[pos] ^= bit;
    }
    return Verdict::Deliver;
}

MitmSubstitutor::MitmSubstitutor(std::string victim_to,
                                 core::Bytes forged_payload)
    : victimTo_(std::move(victim_to)), forged_(std::move(forged_payload))
{
}

Verdict
MitmSubstitutor::onMessage(Message &message)
{
    if (message.to == victimTo_) {
        message.payload = forged_;
        ++substitutions_;
    }
    return Verdict::Deliver;
}

Dropper::Dropper(core::Rng rng, double drop_probability)
    : rng_(rng), probability_(drop_probability)
{
}

Verdict
Dropper::onMessage(Message &message)
{
    (void)message;
    if (rng_.chance(probability_)) {
        ++dropped_;
        return Verdict::Drop;
    }
    return Verdict::Deliver;
}

} // namespace trust::net
