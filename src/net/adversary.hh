/**
 * @file
 * Concrete network adversaries for the TRUST security experiments:
 * passive sniffing, replay, tampering, and full man-in-the-middle
 * payload substitution (assumption iii / Figs. 9-10 analysis).
 */

#ifndef TRUST_NET_ADVERSARY_HH
#define TRUST_NET_ADVERSARY_HH

#include <deque>

#include "core/rng.hh"
#include "net/network.hh"

namespace trust::net {

/** Records everything it sees; never interferes. */
class PassiveSniffer : public Adversary
{
  public:
    Verdict onMessage(Message &message) override;

    const std::vector<Message> &captured() const { return captured_; }

  private:
    std::vector<Message> captured_;
};

/**
 * Replay attacker: records messages matching a direction filter and
 * re-injects each one @p copies times after a delay, attempting to
 * re-execute old authenticated requests (countered by nonces).
 */
class ReplayAttacker : public Adversary
{
  public:
    /**
     * @param network the network used for re-injection.
     * @param victim_to only messages addressed to this endpoint are
     *                  recorded and replayed.
     * @param delay    re-injection delay after the original.
     * @param copies   replays per recorded message.
     */
    ReplayAttacker(Network &network, std::string victim_to,
                   core::Tick delay = core::milliseconds(500),
                   int copies = 1);

    Verdict onMessage(Message &message) override;

    std::uint64_t replaysInjected() const { return injected_; }

  private:
    Network &network_;
    std::string victimTo_;
    core::Tick delay_;
    int copies_;
    std::uint64_t injected_ = 0;
};

/** Flips payload bits with a per-message probability. */
class Tamperer : public Adversary
{
  public:
    Tamperer(core::Rng rng, double tamper_probability = 1.0,
             int flips_per_message = 3);

    Verdict onMessage(Message &message) override;

    std::uint64_t messagesTampered() const { return tampered_; }

  private:
    core::Rng rng_;
    double probability_;
    int flips_;
    std::uint64_t tampered_ = 0;
};

/**
 * Man-in-the-middle: substitutes the payload of messages addressed
 * to the victim with an attacker-chosen payload (e.g. a forged
 * request). Used to show MAC verification rejects wholesale
 * substitution.
 */
class MitmSubstitutor : public Adversary
{
  public:
    MitmSubstitutor(std::string victim_to, core::Bytes forged_payload);

    Verdict onMessage(Message &message) override;

    std::uint64_t substitutions() const { return substitutions_; }

  private:
    std::string victimTo_;
    core::Bytes forged_;
    std::uint64_t substitutions_ = 0;
};

/**
 * Drops messages matching a direction with a given probability.
 *
 * Models an *active* attacker suppressing traffic. For benign wire
 * loss (and duplication/reordering/corruption/partitions) prefer
 * net::FaultModel, which stacks with any adversary and is seeded
 * independently.
 */
class Dropper : public Adversary
{
  public:
    Dropper(core::Rng rng, double drop_probability);

    Verdict onMessage(Message &message) override;

    std::uint64_t messagesDropped() const { return dropped_; }

  private:
    core::Rng rng_;
    double probability_;
    std::uint64_t dropped_ = 0;
};

} // namespace trust::net

#endif // TRUST_NET_ADVERSARY_HH
