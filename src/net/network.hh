/**
 * @file
 * In-process message network with an active-adversary hook.
 *
 * The paper's remote scenario assumes the Internet between the
 * mobile device and the Web Server is untrusted (assumption iii):
 * replay and man-in-the-middle attacks must be considered. The
 * Network delivers byte payloads between named endpoints through a
 * latency model, passing every message through an optional
 * Adversary that can observe, drop, modify, or later re-inject
 * (replay) traffic.
 */

#ifndef TRUST_NET_NETWORK_HH
#define TRUST_NET_NETWORK_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/bytes.hh"
#include "core/sim_clock.hh"

namespace trust::net {

/** A message in flight. */
struct Message
{
    std::string from;
    std::string to;
    core::Bytes payload;
    core::Tick sentAt = 0;
};

/** Adversary verdict for an intercepted message. */
enum class Verdict
{
    Deliver, ///< Pass through (possibly after modification).
    Drop,    ///< Silently discard.
};

/**
 * Base class for network adversaries. The default implementation is
 * a passive wire: everything delivered unmodified.
 */
class Adversary
{
  public:
    virtual ~Adversary() = default;

    /**
     * Inspect (and possibly mutate) a message in flight.
     * @return Verdict::Drop to discard it.
     */
    virtual Verdict
    onMessage(Message &message)
    {
        (void)message;
        return Verdict::Deliver;
    }
};

/** Network latency model. */
struct LatencyModel
{
    core::Tick base = core::milliseconds(20); ///< One-way latency.
    core::Tick perKb = core::microseconds(80); ///< Serialization cost.

    core::Tick
    latencyFor(std::size_t bytes) const
    {
        return base + perKb * ((bytes + 1023) / 1024);
    }
};

class FaultModel; // net/faults.hh

/** The in-process internet. */
class Network
{
  public:
    using Handler = std::function<void(const Message &)>;

    Network(core::EventQueue &queue, LatencyModel latency = {});

    /** Register (or replace) the handler for an endpoint name. */
    void attach(const std::string &endpoint, Handler handler);

    /** Remove an endpoint; in-flight messages to it are dropped. */
    void detach(const std::string &endpoint);

    /** Install (or clear, with nullptr) the adversary. */
    void setAdversary(std::shared_ptr<Adversary> adversary);

    /**
     * Install (or clear, with nullptr) the fault model. Faults are
     * applied after the adversary hook, so both stack: an adversary
     * may tamper with a message that the wire then also drops.
     */
    void setFaultModel(std::shared_ptr<FaultModel> faults);

    const std::shared_ptr<FaultModel> &faultModel() const
    {
        return faults_;
    }

    /**
     * Send @p payload from @p from to @p to; delivery is scheduled
     * on the event queue after the modeled latency, subject to the
     * adversary. Unknown destinations are silently dropped (like
     * packets to a dead host).
     */
    void send(const std::string &from, const std::string &to,
              const core::Bytes &payload);

    /**
     * Inject a raw message directly (used by replay adversaries re-
     * sending recorded traffic). Bypasses the adversary hook to
     * avoid self-interception loops.
     */
    void inject(const Message &message);

    /** Total messages handed to send(). */
    std::uint64_t messagesSent() const { return sent_; }

    /** Total messages delivered to handlers. */
    std::uint64_t messagesDelivered() const { return delivered_; }

    /** Total bytes handed to send(). */
    std::uint64_t bytesSent() const { return bytesSent_; }

    core::EventQueue &queue() { return queue_; }

  private:
    void deliver(const Message &message);

    /**
     * Schedule one delivery @p delay ticks from now. When @p fifo is
     * set the arrival is clamped to the (from, to) channel's FIFO
     * floor and raises it, so a message sent later on the same
     * channel never arrives earlier — and same-tick arrivals fire in
     * sentAt (insertion) order via the event queue's stable
     * tie-break. Reorder faults and attacker-injected traffic pass
     * fifo = false and are the only sources of reordering.
     */
    void scheduleDelivery(const Message &message, core::Tick delay,
                          bool fifo);

    core::EventQueue &queue_;
    LatencyModel latency_;
    std::map<std::string, Handler> handlers_;
    std::shared_ptr<Adversary> adversary_;
    std::shared_ptr<FaultModel> faults_;
    /** Per-(from, to) channel FIFO floor (latest scheduled arrival). */
    std::map<std::pair<std::string, std::string>, core::Tick> fifoFloor_;
    std::uint64_t sent_ = 0;
    std::uint64_t delivered_ = 0;
    std::uint64_t bytesSent_ = 0;
};

} // namespace trust::net

#endif // TRUST_NET_NETWORK_HH
