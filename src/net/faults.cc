#include "net/faults.hh"

#include <algorithm>

#include "core/obs/obs.hh"

namespace trust::net {

namespace {

/** Metrics + audit + trace-instant for one injected fault. */
void
noteFault(const char *kind, const Message &message)
{
    if (!core::obs::enabledFast())
        return;
    core::obs::metrics()
        .counter("net/fault", {{"kind", kind}})
        .add();
    core::obs::audit().record("net", "fault",
                              {{"fault", kind},
                               {"from", message.from},
                               {"to", message.to}});
    core::obs::tracer().instant("net/fault", {{"kind", kind}});
}

} // namespace

FaultModel::FaultModel(std::uint64_t seed, FaultConfig config)
    : rng_(seed), config_(config)
{
}

void
FaultModel::schedulePartition(core::Tick start, core::Tick duration)
{
    partitions_.push_back({start, start + duration});
}

bool
FaultModel::partitionedAt(core::Tick now) const
{
    return std::any_of(partitions_.begin(), partitions_.end(),
                       [now](const Partition &p) {
                           return now >= p.start && now < p.end;
                       });
}

FaultDecision
FaultModel::onSend(Message &message, core::Tick now)
{
    FaultDecision decision;

    if (partitionedAt(now)) {
        ++partitionDropped_;
        noteFault("partition-drop", message);
        decision.drop = true;
        return decision;
    }
    if (rng_.chance(config_.dropRate)) {
        ++dropped_;
        noteFault("drop", message);
        decision.drop = true;
        return decision;
    }

    if (config_.corruptRate > 0.0 && !message.payload.empty() &&
        rng_.chance(config_.corruptRate)) {
        const int flips = static_cast<int>(
            rng_.uniformInt(1, std::max(1, config_.corruptMaxFlips)));
        for (int i = 0; i < flips; ++i) {
            const auto byte = static_cast<std::size_t>(rng_.uniformInt(
                0,
                static_cast<std::int64_t>(message.payload.size()) - 1));
            message.payload[byte] ^= static_cast<std::uint8_t>(
                1u << rng_.uniformInt(0, 7));
        }
        ++corrupted_;
        noteFault("corrupt", message);
        decision.corrupted = true;
    }

    if (config_.latencySpikeRate > 0.0 &&
        rng_.chance(config_.latencySpikeRate)) {
        decision.spikeDelay = 1 + static_cast<core::Tick>(rng_.uniformInt(
            0,
            static_cast<std::int64_t>(
                std::max<core::Tick>(1, config_.latencySpikeMax) - 1)));
        ++spiked_;
        noteFault("latency-spike", message);
    }

    if (config_.reorderRate > 0.0 && rng_.chance(config_.reorderRate)) {
        decision.reorderDelay = 1 + static_cast<core::Tick>(rng_.uniformInt(
            0,
            static_cast<std::int64_t>(
                std::max<core::Tick>(1, config_.reorderDelayMax) - 1)));
        ++reordered_;
        noteFault("reorder", message);
    }

    if (config_.duplicateRate > 0.0 &&
        rng_.chance(config_.duplicateRate)) {
        decision.duplicates.push_back(
            1 + static_cast<core::Tick>(rng_.uniformInt(
                0,
                static_cast<std::int64_t>(
                    std::max<core::Tick>(1, config_.duplicateDelayMax) -
                    1))));
        ++duplicated_;
        noteFault("duplicate", message);
    }
    return decision;
}

} // namespace trust::net
