/**
 * @file
 * Composable network fault model for chaos experiments.
 *
 * The paper's threat model treats the Internet between FLock
 * devices and web servers as untrusted; production continuous-auth
 * additionally has to treat it as *unreliable*. FaultModel injects
 * the classic loss modes — probabilistic drop, duplication,
 * reordering, bit corruption, latency spikes and timed partitions —
 * into Network::send, independently of (and stacking with) the
 * active Adversary hook. All randomness flows through core::Rng so
 * a (seed, config) pair reproduces the exact fault trace.
 */

#ifndef TRUST_NET_FAULTS_HH
#define TRUST_NET_FAULTS_HH

#include <cstdint>
#include <vector>

#include "core/rng.hh"
#include "core/sim_clock.hh"
#include "net/network.hh"

namespace trust::net {

/** Probabilities and magnitudes of each fault primitive. */
struct FaultConfig
{
    /** Probability a message is silently lost. */
    double dropRate = 0.0;

    /** Probability a message is delivered twice. */
    double duplicateRate = 0.0;

    /** Extra delay of the duplicate copy, uniform in (0, max]. */
    core::Tick duplicateDelayMax = core::milliseconds(50);

    /**
     * Probability a message is held back so that later traffic on
     * the same channel overtakes it. Reordered messages bypass the
     * network's FIFO tie-break — this is the *only* way send order
     * and delivery order can differ.
     */
    double reorderRate = 0.0;

    /** Hold-back of a reordered message, uniform in (0, max]. */
    core::Tick reorderDelayMax = core::milliseconds(200);

    /** Probability the payload is bit-corrupted in flight. */
    double corruptRate = 0.0;

    /** Bit flips per corrupted message, uniform in [1, max]. */
    int corruptMaxFlips = 3;

    /**
     * Probability of a latency spike. Spikes delay the message AND
     * everything behind it on the channel (head-of-line blocking),
     * so they do not reorder.
     */
    double latencySpikeRate = 0.0;

    /** Spike magnitude, uniform in (0, max]. */
    core::Tick latencySpikeMax = core::milliseconds(500);
};

/** What the fault model decided for one message. */
struct FaultDecision
{
    bool drop = false;      ///< Lose the message entirely.
    bool corrupted = false; ///< Payload was mutated in place.

    /** FIFO-preserving extra delay (latency spike / partition tail). */
    core::Tick spikeDelay = 0;

    /** Order-breaking hold-back (reorder fault); 0 = in order. */
    core::Tick reorderDelay = 0;

    /** Extra copies to deliver, each after this additional delay. */
    std::vector<core::Tick> duplicates;
};

/**
 * Seeded, composable fault injector. Install on a Network with
 * setFaultModel(); it is consulted for every send() after the
 * adversary hook (an adversary-dropped message never reaches the
 * fault model).
 */
class FaultModel
{
  public:
    explicit FaultModel(std::uint64_t seed, FaultConfig config = {});

    const FaultConfig &config() const { return config_; }
    void setConfig(const FaultConfig &config) { config_ = config; }

    /**
     * Schedule a network partition: every message sent with
     * sentAt in [start, start + duration) is dropped. Intervals
     * may overlap; they are checked independently.
     */
    void schedulePartition(core::Tick start, core::Tick duration);

    /** True when @p now falls inside a scheduled partition. */
    bool partitionedAt(core::Tick now) const;

    /**
     * Decide the fate of @p message sent at @p now. May mutate the
     * payload (bit corruption). Partition drops take precedence
     * over every probabilistic fault.
     */
    FaultDecision onSend(Message &message, core::Tick now);

    // --- Fault accounting (for benches and tests) ----------------------

    std::uint64_t messagesDropped() const { return dropped_; }
    std::uint64_t partitionDrops() const { return partitionDropped_; }
    std::uint64_t messagesDuplicated() const { return duplicated_; }
    std::uint64_t messagesReordered() const { return reordered_; }
    std::uint64_t messagesCorrupted() const { return corrupted_; }
    std::uint64_t latencySpikes() const { return spiked_; }

  private:
    struct Partition
    {
        core::Tick start = 0;
        core::Tick end = 0; ///< exclusive
    };

    core::Rng rng_;
    FaultConfig config_;
    std::vector<Partition> partitions_;
    std::uint64_t dropped_ = 0;
    std::uint64_t partitionDropped_ = 0;
    std::uint64_t duplicated_ = 0;
    std::uint64_t reordered_ = 0;
    std::uint64_t corrupted_ = 0;
    std::uint64_t spiked_ = 0;
};

} // namespace trust::net

#endif // TRUST_NET_FAULTS_HH
