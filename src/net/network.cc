#include "net/network.hh"

namespace trust::net {

Network::Network(core::EventQueue &queue, LatencyModel latency)
    : queue_(queue), latency_(latency)
{
}

void
Network::attach(const std::string &endpoint, Handler handler)
{
    handlers_[endpoint] = std::move(handler);
}

void
Network::detach(const std::string &endpoint)
{
    handlers_.erase(endpoint);
}

void
Network::setAdversary(std::shared_ptr<Adversary> adversary)
{
    adversary_ = std::move(adversary);
}

void
Network::send(const std::string &from, const std::string &to,
              const core::Bytes &payload)
{
    ++sent_;
    bytesSent_ += payload.size();

    Message message{from, to, payload, queue_.now()};
    if (adversary_ &&
        adversary_->onMessage(message) == Verdict::Drop)
        return;

    const core::Tick delay = latency_.latencyFor(message.payload.size());
    queue_.scheduleAfter(delay, [this, message] { deliver(message); });
}

void
Network::inject(const Message &message)
{
    const core::Tick delay = latency_.latencyFor(message.payload.size());
    queue_.scheduleAfter(delay, [this, message] { deliver(message); });
}

void
Network::deliver(const Message &message)
{
    auto it = handlers_.find(message.to);
    if (it == handlers_.end())
        return;
    ++delivered_;
    it->second(message);
}

} // namespace trust::net
