#include "net/network.hh"

#include <algorithm>

#include "core/obs/obs.hh"
#include "net/faults.hh"

namespace trust::net {

Network::Network(core::EventQueue &queue, LatencyModel latency)
    : queue_(queue), latency_(latency)
{
}

void
Network::attach(const std::string &endpoint, Handler handler)
{
    handlers_[endpoint] = std::move(handler);
}

void
Network::detach(const std::string &endpoint)
{
    handlers_.erase(endpoint);
}

void
Network::setAdversary(std::shared_ptr<Adversary> adversary)
{
    adversary_ = std::move(adversary);
}

void
Network::setFaultModel(std::shared_ptr<FaultModel> faults)
{
    faults_ = std::move(faults);
}

void
Network::scheduleDelivery(const Message &message, core::Tick delay,
                          bool fifo)
{
    core::Tick arrival = queue_.now() + delay;
    if (fifo) {
        core::Tick &floor = fifoFloor_[{message.from, message.to}];
        arrival = std::max(arrival, floor);
        floor = arrival;
    }
    queue_.scheduleAt(arrival, [this, message] { deliver(message); });
}

void
Network::send(const std::string &from, const std::string &to,
              const core::Bytes &payload)
{
    ++sent_;
    bytesSent_ += payload.size();
    if (core::obs::enabledFast()) {
        core::obs::metrics().counter("net/sent").add();
        core::obs::metrics()
            .counter("net/bytes-sent")
            .add(payload.size());
    }

    Message message{from, to, payload, queue_.now()};
    if (adversary_ &&
        adversary_->onMessage(message) == Verdict::Drop) {
        if (core::obs::enabledFast())
            core::obs::metrics()
                .counter("net/dropped", {{"by", "adversary"}})
                .add();
        return;
    }

    const core::Tick base = latency_.latencyFor(message.payload.size());
    if (!faults_) {
        scheduleDelivery(message, base, /*fifo=*/true);
        return;
    }

    const FaultDecision decision = faults_->onSend(message, queue_.now());
    if (decision.drop)
        return;
    if (decision.reorderDelay > 0) {
        // Held back past the FIFO floor: later channel traffic may
        // overtake. Deliberately neither clamped nor floor-raising.
        scheduleDelivery(message,
                         base + decision.spikeDelay +
                             decision.reorderDelay,
                         /*fifo=*/false);
    } else {
        scheduleDelivery(message, base + decision.spikeDelay,
                         /*fifo=*/true);
    }
    for (const core::Tick extra : decision.duplicates)
        scheduleDelivery(message, base + decision.spikeDelay + extra,
                         /*fifo=*/false);
}

void
Network::inject(const Message &message)
{
    const core::Tick delay = latency_.latencyFor(message.payload.size());
    // Attacker-injected traffic is outside the modeled FIFO path.
    scheduleDelivery(message, delay, /*fifo=*/false);
}

void
Network::deliver(const Message &message)
{
    auto it = handlers_.find(message.to);
    if (it == handlers_.end())
        return;
    ++delivered_;
    if (core::obs::enabledFast())
        core::obs::metrics().counter("net/delivered").add();
    it->second(message);
}

} // namespace trust::net
