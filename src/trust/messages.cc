#include "trust/messages.hh"

namespace trust::trust {

namespace {

/** Begin a payload with its kind byte and request id. */
core::ByteWriter
beginMessage(MsgKind kind, std::uint64_t request_id)
{
    core::ByteWriter w;
    w.writeU8(static_cast<std::uint8_t>(kind));
    w.writeU64(request_id);
    return w;
}

/** Open a reader and verify the kind byte. */
// trustlint: untrusted-input
std::optional<core::ByteReader>
openMessage(const core::Bytes &payload, MsgKind expected)
{
    core::ByteReader r(payload);
    if (r.readU8() != static_cast<std::uint8_t>(expected) || !r.ok())
        return std::nullopt;
    return r;
}

} // namespace

// trustlint: untrusted-input
std::optional<MsgKind>
peekKind(const core::Bytes &payload)
{
    if (payload.empty())
        return std::nullopt;
    const std::uint8_t k = payload[0];
    if (k < 1 || k > 10)
        return std::nullopt;
    return static_cast<MsgKind>(k);
}

// trustlint: untrusted-input
std::optional<std::uint64_t>
peekRequestId(const core::Bytes &payload)
{
    if (!peekKind(payload))
        return std::nullopt;
    core::ByteReader r(payload);
    r.readU8();
    const std::uint64_t id = r.readU64();
    if (!r.ok())
        return std::nullopt;
    return id;
}

// --- RegistrationRequest -------------------------------------------------

core::Bytes
RegistrationRequest::serialize() const
{
    auto w = beginMessage(MsgKind::RegistrationRequest, requestId);
    w.writeString(domain);
    w.writeString(account);
    return w.take();
}

// trustlint: untrusted-input
std::optional<RegistrationRequest>
RegistrationRequest::deserialize(const core::Bytes &payload)
{
    auto r = openMessage(payload, MsgKind::RegistrationRequest);
    if (!r)
        return std::nullopt;
    RegistrationRequest m;
    m.requestId = r->readU64();
    m.domain = r->readString();
    m.account = r->readString();
    if (!r->ok() || !r->atEnd())
        return std::nullopt;
    return m;
}

// --- RegistrationPage ----------------------------------------------------

core::Bytes
RegistrationPage::signedBody() const
{
    core::ByteWriter w;
    w.writeU8(static_cast<std::uint8_t>(MsgKind::RegistrationPage));
    w.writeU64(requestId);
    w.writeString(domain);
    w.writeBytes(nonce);
    w.writeBytes(pageContent);
    w.writeBytes(serverCert);
    return w.take();
}

core::Bytes
RegistrationPage::serialize() const
{
    auto w = beginMessage(MsgKind::RegistrationPage, requestId);
    w.writeString(domain);
    w.writeBytes(nonce);
    w.writeBytes(pageContent);
    w.writeBytes(serverCert);
    w.writeBytes(signature);
    return w.take();
}

// trustlint: untrusted-input
std::optional<RegistrationPage>
RegistrationPage::deserialize(const core::Bytes &payload)
{
    auto r = openMessage(payload, MsgKind::RegistrationPage);
    if (!r)
        return std::nullopt;
    RegistrationPage m;
    m.requestId = r->readU64();
    m.domain = r->readString();
    m.nonce = r->readBytes();
    m.pageContent = r->readBytes();
    m.serverCert = r->readBytes();
    m.signature = r->readBytes();
    if (!r->ok() || !r->atEnd())
        return std::nullopt;
    return m;
}

// --- RegistrationSubmit --------------------------------------------------

core::Bytes
RegistrationSubmit::signedBody() const
{
    core::ByteWriter w;
    w.writeU8(static_cast<std::uint8_t>(MsgKind::RegistrationSubmit));
    w.writeU64(requestId);
    w.writeString(domain);
    w.writeString(account);
    w.writeBytes(nonce);
    w.writeBytes(deviceCert);
    w.writeBytes(userPublicKey);
    w.writeBytes(frameHash);
    return w.take();
}

core::Bytes
RegistrationSubmit::serialize() const
{
    auto w = beginMessage(MsgKind::RegistrationSubmit, requestId);
    w.writeString(domain);
    w.writeString(account);
    w.writeBytes(nonce);
    w.writeBytes(deviceCert);
    w.writeBytes(userPublicKey);
    w.writeBytes(frameHash);
    w.writeBytes(signature);
    return w.take();
}

// trustlint: untrusted-input
std::optional<RegistrationSubmit>
RegistrationSubmit::deserialize(const core::Bytes &payload)
{
    auto r = openMessage(payload, MsgKind::RegistrationSubmit);
    if (!r)
        return std::nullopt;
    RegistrationSubmit m;
    m.requestId = r->readU64();
    m.domain = r->readString();
    m.account = r->readString();
    m.nonce = r->readBytes();
    m.deviceCert = r->readBytes();
    m.userPublicKey = r->readBytes();
    m.frameHash = r->readBytes();
    m.signature = r->readBytes();
    if (!r->ok() || !r->atEnd())
        return std::nullopt;
    return m;
}

// --- RegistrationResult --------------------------------------------------

core::Bytes
RegistrationResult::serialize() const
{
    auto w = beginMessage(MsgKind::RegistrationResult, requestId);
    w.writeString(domain);
    w.writeString(account);
    w.writeBool(ok);
    w.writeString(reason);
    return w.take();
}

// trustlint: untrusted-input
std::optional<RegistrationResult>
RegistrationResult::deserialize(const core::Bytes &payload)
{
    auto r = openMessage(payload, MsgKind::RegistrationResult);
    if (!r)
        return std::nullopt;
    RegistrationResult m;
    m.requestId = r->readU64();
    m.domain = r->readString();
    m.account = r->readString();
    m.ok = r->readBool();
    m.reason = r->readString();
    if (!r->ok() || !r->atEnd())
        return std::nullopt;
    return m;
}

// --- LoginRequest ---------------------------------------------------------

core::Bytes
LoginRequest::serialize() const
{
    auto w = beginMessage(MsgKind::LoginRequest, requestId);
    w.writeString(domain);
    w.writeString(account);
    return w.take();
}

// trustlint: untrusted-input
std::optional<LoginRequest>
LoginRequest::deserialize(const core::Bytes &payload)
{
    auto r = openMessage(payload, MsgKind::LoginRequest);
    if (!r)
        return std::nullopt;
    LoginRequest m;
    m.requestId = r->readU64();
    m.domain = r->readString();
    m.account = r->readString();
    if (!r->ok() || !r->atEnd())
        return std::nullopt;
    return m;
}

// --- LoginPage --------------------------------------------------------------

core::Bytes
LoginPage::signedBody() const
{
    core::ByteWriter w;
    w.writeU8(static_cast<std::uint8_t>(MsgKind::LoginPage));
    w.writeU64(requestId);
    w.writeString(domain);
    w.writeBytes(nonce);
    w.writeBytes(pageContent);
    return w.take();
}

core::Bytes
LoginPage::serialize() const
{
    auto w = beginMessage(MsgKind::LoginPage, requestId);
    w.writeString(domain);
    w.writeBytes(nonce);
    w.writeBytes(pageContent);
    w.writeBytes(signature);
    return w.take();
}

// trustlint: untrusted-input
std::optional<LoginPage>
LoginPage::deserialize(const core::Bytes &payload)
{
    auto r = openMessage(payload, MsgKind::LoginPage);
    if (!r)
        return std::nullopt;
    LoginPage m;
    m.requestId = r->readU64();
    m.domain = r->readString();
    m.nonce = r->readBytes();
    m.pageContent = r->readBytes();
    m.signature = r->readBytes();
    if (!r->ok() || !r->atEnd())
        return std::nullopt;
    return m;
}

// --- LoginSubmit ------------------------------------------------------------

core::Bytes
LoginSubmit::macBody() const
{
    core::ByteWriter w;
    w.writeU8(static_cast<std::uint8_t>(MsgKind::LoginSubmit));
    w.writeU64(requestId);
    w.writeString(domain);
    w.writeString(account);
    w.writeBytes(nonce);
    w.writeBytes(encSessionKey);
    w.writeBytes(frameHash);
    w.writeU32(riskMatched);
    w.writeU32(riskWindow);
    return w.take();
}

core::Bytes
LoginSubmit::serialize() const
{
    auto w = beginMessage(MsgKind::LoginSubmit, requestId);
    w.writeString(domain);
    w.writeString(account);
    w.writeBytes(nonce);
    w.writeBytes(encSessionKey);
    w.writeBytes(frameHash);
    w.writeU32(riskMatched);
    w.writeU32(riskWindow);
    w.writeBytes(mac);
    return w.take();
}

// trustlint: untrusted-input
std::optional<LoginSubmit>
LoginSubmit::deserialize(const core::Bytes &payload)
{
    auto r = openMessage(payload, MsgKind::LoginSubmit);
    if (!r)
        return std::nullopt;
    LoginSubmit m;
    m.requestId = r->readU64();
    m.domain = r->readString();
    m.account = r->readString();
    m.nonce = r->readBytes();
    m.encSessionKey = r->readBytes();
    m.frameHash = r->readBytes();
    m.riskMatched = r->readU32();
    m.riskWindow = r->readU32();
    m.mac = r->readBytes();
    if (!r->ok() || !r->atEnd())
        return std::nullopt;
    return m;
}

// --- ContentPage ------------------------------------------------------------

core::Bytes
ContentPage::macBody() const
{
    core::ByteWriter w;
    w.writeU8(static_cast<std::uint8_t>(MsgKind::ContentPage));
    w.writeU64(requestId);
    w.writeString(domain);
    w.writeU64(sessionId);
    w.writeBytes(nonce);
    w.writeBytes(pageContent);
    return w.take();
}

core::Bytes
ContentPage::serialize() const
{
    auto w = beginMessage(MsgKind::ContentPage, requestId);
    w.writeString(domain);
    w.writeU64(sessionId);
    w.writeBytes(nonce);
    w.writeBytes(pageContent);
    w.writeBytes(mac);
    return w.take();
}

// trustlint: untrusted-input
std::optional<ContentPage>
ContentPage::deserialize(const core::Bytes &payload)
{
    auto r = openMessage(payload, MsgKind::ContentPage);
    if (!r)
        return std::nullopt;
    ContentPage m;
    m.requestId = r->readU64();
    m.domain = r->readString();
    m.sessionId = r->readU64();
    m.nonce = r->readBytes();
    m.pageContent = r->readBytes();
    m.mac = r->readBytes();
    if (!r->ok() || !r->atEnd())
        return std::nullopt;
    return m;
}

// --- PageRequest ------------------------------------------------------------

core::Bytes
PageRequest::macBody() const
{
    core::ByteWriter w;
    w.writeU8(static_cast<std::uint8_t>(MsgKind::PageRequest));
    w.writeU64(requestId);
    w.writeString(domain);
    w.writeString(account);
    w.writeU64(sessionId);
    w.writeBytes(nonce);
    w.writeString(action);
    w.writeBytes(frameHash);
    w.writeU32(riskMatched);
    w.writeU32(riskWindow);
    return w.take();
}

core::Bytes
PageRequest::serialize() const
{
    auto w = beginMessage(MsgKind::PageRequest, requestId);
    w.writeString(domain);
    w.writeString(account);
    w.writeU64(sessionId);
    w.writeBytes(nonce);
    w.writeString(action);
    w.writeBytes(frameHash);
    w.writeU32(riskMatched);
    w.writeU32(riskWindow);
    w.writeBytes(mac);
    return w.take();
}

// trustlint: untrusted-input
std::optional<PageRequest>
PageRequest::deserialize(const core::Bytes &payload)
{
    auto r = openMessage(payload, MsgKind::PageRequest);
    if (!r)
        return std::nullopt;
    PageRequest m;
    m.requestId = r->readU64();
    m.domain = r->readString();
    m.account = r->readString();
    m.sessionId = r->readU64();
    m.nonce = r->readBytes();
    m.action = r->readString();
    m.frameHash = r->readBytes();
    m.riskMatched = r->readU32();
    m.riskWindow = r->readU32();
    m.mac = r->readBytes();
    if (!r->ok() || !r->atEnd())
        return std::nullopt;
    return m;
}

// --- ErrorReply -------------------------------------------------------------

core::Bytes
ErrorReply::serialize() const
{
    auto w = beginMessage(MsgKind::ErrorReply, requestId);
    w.writeString(domain);
    w.writeString(reason);
    return w.take();
}

// trustlint: untrusted-input
std::optional<ErrorReply>
ErrorReply::deserialize(const core::Bytes &payload)
{
    auto r = openMessage(payload, MsgKind::ErrorReply);
    if (!r)
        return std::nullopt;
    ErrorReply m;
    m.requestId = r->readU64();
    m.domain = r->readString();
    m.reason = r->readString();
    if (!r->ok() || !r->atEnd())
        return std::nullopt;
    return m;
}

} // namespace trust::trust
