#include "trust/scenario.hh"

#include "core/logging.hh"
#include "core/obs/obs.hh"

namespace trust::trust {

Ecosystem::Ecosystem(const EcosystemConfig &config)
    : config_(config), network_(queue_, config.latency),
      caRng_(config.seed ^ 0xCAFECAFEULL),
      ca_(std::make_unique<crypto::CertificateAuthority>(
          "TrustRootCA", config.rsaBits, caRng_)),
      nextSeed_(config.seed * 7919 + 17)
{
    // The live ecosystem's queue becomes the observability time
    // source: audit records get raw sim ticks, trace spans anchor
    // to them.
    core::obs::setClockSource(&queue_);
}

Ecosystem::~Ecosystem()
{
    core::obs::setClockSource(nullptr);
}

WebServer &
Ecosystem::addServer(const std::string &domain)
{
    auto server = std::make_unique<WebServer>(
        domain, *ca_, nextSeed_++, config_.rsaBits,
        config_.serverPolicy, config_.flockConfig.display);
    WebServer &ref = *server;
    network_.attach(domain, [this, &ref](const net::Message &message) {
        // The sender address keys the server's duplicate-suppression
        // cache, making device retransmissions idempotent; sim time
        // lets the server age out abandoned handshake nonces.
        const core::Bytes reply =
            ref.handle(message.payload, message.from, queue_.now());
        network_.send(ref.domain(), message.from, reply);
    });
    servers_.push_back(std::move(server));
    return ref;
}

MobileDevice &
Ecosystem::addDevice(const std::string &name,
                     const touch::UserBehavior &behavior,
                     const fingerprint::MasterFinger &owner)
{
    hw::BiometricTouchscreen screen = makeOptimizedScreen(
        behavior, config_.sensorTiles, config_.tileSideMm, nextSeed_++);

    FlockConfig flock_config = config_.flockConfig;
    flock_config.rsaBits = config_.rsaBits;
    FlockModule flock(name + "-flock", ca_->rootKey(), nextSeed_++,
                      flock_config);
    flock.installDeviceCertificate(
        ca_->issue(name + "-flock", crypto::CertRole::FlockDevice,
                   flock.devicePublicKey()));

    auto device = std::make_unique<MobileDevice>(
        name, std::move(screen), std::move(flock), nextSeed_++);
    MobileDevice &ref = *device;
    ref.attachToNetwork(network_);
    if (!ref.enrollOwner(owner))
        core::warn("owner enrollment produced no usable view");
    devices_.push_back(std::move(device));
    return ref;
}

hw::BiometricTouchscreen
makeOptimizedScreen(const touch::UserBehavior &behavior, int tiles,
                    double tile_side_mm, std::uint64_t seed)
{
    core::Rng rng(seed);

    placement::PlacementProblem problem;
    problem.screen = behavior.screen();
    problem.density = behavior.densityMap(47, 26, 4000, rng);
    problem.sensorSideMm = tile_side_mm;
    problem.sensorCount = tiles;

    const placement::Placement placement =
        placement::placeGreedy(problem);

    hw::TouchPanelSpec panel_spec;
    panel_spec.screen = behavior.screen();
    return hw::BiometricTouchscreen(
        panel_spec, placement::toPlacedSensors(placement));
}

SessionOutcome
runBrowsingSession(Ecosystem &ecosystem, MobileDevice &device,
                   WebServer &server,
                   const touch::UserBehavior &behavior,
                   const fingerprint::MasterFinger &finger,
                   core::Rng &rng, int clicks,
                   const std::string &account)
{
    return runBrowsingSession(ecosystem.queue(), device, server,
                              behavior, finger, rng, clicks, account);
}

SessionOutcome
runBrowsingSession(core::EventQueue &queue, MobileDevice &device,
                   WebServer &server,
                   const touch::UserBehavior &behavior,
                   const fingerprint::MasterFinger &finger,
                   core::Rng &rng, int clicks,
                   const std::string &account)
{
    SessionOutcome outcome;
    const std::string &domain = server.domain();

    // The registration / login confirmation buttons are drawn over
    // the first sensor tile (critical-button countermeasure).
    TRUST_ASSERT(!device.screen().sensors().empty(),
                 "runBrowsingSession: device has no sensor tiles");
    const core::Vec2 critical_button =
        device.screen().sensors()[0].region.center();

    auto critical_touch = [&]() {
        touch::TouchEvent event;
        event.position = critical_button;
        event.speed = 0.05; // deliberate press
        event.gesture = touch::GestureType::Tap;
        event.target = "critical-button";
        return event;
    };

    // Registration (Fig. 9). A rejected confirmation touch (per
    // touch FRR of partial prints) just means the user presses the
    // button again, re-requesting the page.
    for (int attempt = 0;
         attempt < 16 && !device.registrationComplete(domain);
         ++attempt) {
        device.startRegistration(domain, account);
        queue.run();
        device.onTouch(critical_touch(), &finger);
        queue.run();
    }
    outcome.registered = device.registrationComplete(domain);
    if (!outcome.registered)
        return outcome;

    // Login (Fig. 10 steps 1-3), same retry discipline.
    for (int attempt = 0;
         attempt < 16 && !device.sessionActive(domain); ++attempt) {
        device.startLogin(domain);
        queue.run();
        device.onTouch(critical_touch(), &finger);
        queue.run();
    }
    outcome.loggedIn = device.sessionActive(domain);
    if (!outcome.loggedIn)
        return outcome;

    // Natural browsing: every touch is a navigation plus an
    // opportunistic authentication sample.
    const std::uint64_t rejected_before =
        device.counters().get("server-error-reply");
    const auto touches = touch::generateSession(
        behavior, rng, queue.now() + core::seconds(1),
        clicks);
    for (const auto &event : touches) {
        // If an outage outlasted the retransmission budget, the
        // session must be re-established (Fig. 10 re-handshake) with
        // a deliberate confirmation press before browsing resumes.
        for (int attempt = 0;
             attempt < 16 && device.sessionNeedsResume(domain);
             ++attempt) {
            device.resumeSession(domain);
            queue.run();
            device.onTouch(critical_touch(), &finger);
            queue.run();
        }
        device.onTouch(event, &finger);
        queue.run();
    }
    outcome.pagesReceived =
        static_cast<int>(device.pagesReceived()) - 1; // minus login page
    outcome.requestsRejected = static_cast<int>(
        device.counters().get("server-error-reply") - rejected_before);
    return outcome;
}

} // namespace trust::trust
