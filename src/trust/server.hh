/**
 * @file
 * The TRUST-aware Web Server (Figs. 8-10 server side).
 *
 * Holds the CA-issued server certificate, the Server Database of
 * (account, user public key) bindings created at registration, the
 * per-session state of the continuous-authentication protocol, and
 * the frame-hash audit log the paper proposes for offline detection
 * of display tampering.
 */

#ifndef TRUST_TRUST_SERVER_HH
#define TRUST_TRUST_SERVER_HH

#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/stats.hh"
#include "crypto/cert.hh"
#include "hw/flock_hw.hh"
#include "trust/messages.hh"

namespace trust::trust {

/** Server-side policy knobs. */
struct ServerPolicy
{
    /**
     * Minimum matched touches the risk field must report once the
     * window is full; requests below are rejected (Fig. 10 "update
     * identity risk" on the server side).
     */
    std::uint32_t minRiskMatched = 2;

    /** Window fill above which the risk policy is enforced. */
    std::uint32_t riskEnforceWindow = 8;

    /** Verify frame hashes online instead of logging for audit. */
    bool onlineFrameVerification = false;
};

/** One audit-log entry (frame hash + what it should have shown). */
struct AuditEntry
{
    std::string account;
    std::uint64_t sessionId = 0;
    core::Bytes frameHash;
    std::vector<core::Bytes> expectedHashes;
};

/** The web service. */
class WebServer
{
  public:
    /**
     * @param domain   DNS-style service name ("www.xyz.com").
     * @param ca       issuing authority (also used for verification).
     * @param seed     CSPRNG seed.
     * @param rsa_bits server key size.
     */
    WebServer(std::string domain, crypto::CertificateAuthority &ca,
              std::uint64_t seed, std::size_t rsa_bits = 512,
              ServerPolicy policy = {},
              hw::DisplaySpec display = {});

    const std::string &domain() const { return domain_; }
    const crypto::Certificate &certificate() const { return cert_; }
    const crypto::RsaPublicKey &publicKey() const { return keys_.pub; }

    /**
     * Dispatch one raw request payload and return the raw reply
     * (always produces a reply; errors become ErrorReply).
     *
     * @param from sender address for duplicate suppression. When
     *        non-empty and the request carries a non-zero id, a
     *        repeat of an already-answered (from, id) pair returns
     *        the cached original reply ("dedup-hit") instead of
     *        re-executing the handler — this is what makes device
     *        retransmissions idempotent even though nonces are
     *        consumed on first use.
     */
    core::Bytes handle(const core::Bytes &request,
                       const std::string &from = "");

    // --- Typed handlers (Fig. 9 / Fig. 10 steps) -----------------------

    RegistrationPage
    handleRegistrationRequest(const RegistrationRequest &request);

    RegistrationResult
    handleRegistrationSubmit(const RegistrationSubmit &submit);

    std::optional<LoginPage> handleLoginRequest(const LoginRequest &);

    /** Login: returns a ContentPage on success. */
    std::optional<ContentPage> handleLoginSubmit(const LoginSubmit &);

    /** Continuous auth: each page request yields the next page. */
    std::optional<ContentPage> handlePageRequest(const PageRequest &);

    // --- Account management --------------------------------------------

    bool accountRegistered(const std::string &account) const;

    /** The Identity Reset flow: drop the public-key binding. */
    bool resetIdentity(const std::string &account);

    /**
     * Install a certificate revocation snapshot from the CA: device
     * certificates whose serials appear here are refused at
     * registration (a lost device's certificate is revoked as part
     * of the Identity Reset flow).
     */
    void installRevocationList(std::vector<std::uint64_t> serials);

    std::size_t registeredAccounts() const { return database_.size(); }
    std::size_t activeSessions() const { return sessions_.size(); }

    // --- Audit -----------------------------------------------------------

    /**
     * Offline frame-hash audit: number of logged frames whose hash
     * does not belong to the expected view set of the page that was
     * being displayed (i.e. display-tampering detections).
     */
    std::size_t auditFrameHashes() const;

    std::size_t auditLogSize() const { return auditLog_.size(); }

    /** Event counters (accepted/rejected requests by cause). */
    const core::CounterSet &counters() const { return counters_; }

  private:
    struct SessionState
    {
        std::string account;
        core::Bytes sessionKey;
        core::Bytes expectedNonce;
        core::Bytes currentPage; ///< Plaintext page last served.
        /**
         * Highest request id accepted in this session. Ids are
         * device-monotonic, so after MAC verification anything at or
         * below this is a duplicate (late retransmission) and is
         * rejected rather than re-served with a fresh nonce.
         */
        std::uint64_t lastRequestId = 0;
    };

    /** One answered (from, id) pair with its original reply. */
    struct DedupEntry
    {
        std::string from;
        std::uint64_t requestId = 0;
        core::Bytes reply;
    };

    /** Route one decoded-kind payload to its typed handler. */
    core::Bytes dispatch(MsgKind kind, const core::Bytes &request,
                         std::uint64_t request_id);

    /** Page content generator (deterministic per action). */
    core::Bytes pageFor(const std::string &tag) const;

    core::Bytes freshNonce();

    /** Build, MAC and log a content page for a session. */
    ContentPage makeContentPage(std::uint64_t session_id,
                                SessionState &session,
                                const std::string &tag,
                                std::uint64_t request_id = 0);

    ErrorReply error(const std::string &reason,
                     std::uint64_t request_id = 0);

    /**
     * Record one verdict: bump the named counter (unchanged
     * behaviour) and, when observability is on, mirror it into the
     * metrics registry and the decision audit log.
     */
    void note(const std::string &event,
              const std::string &account = std::string(),
              const std::string &detail = std::string());

    std::string domain_;
    crypto::RsaPublicKey caKey_;
    crypto::Csprng rng_;
    crypto::RsaKeyPair keys_;
    crypto::Certificate cert_;
    ServerPolicy policy_;
    hw::DisplaySpec display_;
    hw::FrameHashEngine frameHash_;

    std::map<std::string, crypto::RsaPublicKey> database_;
    /**
     * Outstanding nonces are per-request tokens: each page issue
     * adds one, each successful submit consumes it, so replaying a
     * page request cannot invalidate an in-flight genuine exchange
     * and replaying a submit finds its nonce already spent.
     */
    std::map<std::string, std::vector<core::Bytes>> pendingRegNonce_;
    std::map<std::string, std::vector<core::Bytes>> pendingLoginNonce_;
    std::map<std::uint64_t, SessionState> sessions_;
    std::uint64_t nextSessionId_ = 1;
    std::deque<DedupEntry> dedupCache_; ///< Bounded reply LRU.
    std::vector<AuditEntry> auditLog_;
    std::vector<std::uint64_t> revokedSerials_;
    core::CounterSet counters_;
};

} // namespace trust::trust

#endif // TRUST_TRUST_SERVER_HH
