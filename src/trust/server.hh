/**
 * @file
 * The TRUST-aware Web Server (Figs. 8-10 server side).
 *
 * Holds the CA-issued server certificate, the Server Database of
 * (account, user public key) bindings created at registration, the
 * per-session state of the continuous-authentication protocol, and
 * the frame-hash audit log the paper proposes for offline detection
 * of display tampering.
 *
 * **Concurrency.** `handle()` is safe to call from many threads at
 * once: every mutable table is striped into locked shards keyed by
 * the natural request key (account, session id, or sender address),
 * so requests for different keys proceed in parallel and requests
 * for the same key serialize on one shard mutex. The discipline is
 * single-lock-at-a-time — no code path acquires a second shard
 * mutex while holding one (expensive crypto always runs between
 * lock scopes, re-validating state after reacquisition), which is
 * exactly the invariant trustlint's `lock-order` rule checks.
 * Decisions stay deterministic per key under any interleaving; see
 * DESIGN.md §11.
 */

#ifndef TRUST_TRUST_SERVER_HH
#define TRUST_TRUST_SERVER_HH

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/stats.hh"
#include "crypto/cert.hh"
#include "hw/flock_hw.hh"
#include "trust/messages.hh"

namespace trust::trust {

/** Server-side policy knobs. */
struct ServerPolicy
{
    /**
     * Minimum matched touches the risk field must report once the
     * window is full; requests below are rejected (Fig. 10 "update
     * identity risk" on the server side).
     */
    std::uint32_t minRiskMatched = 2;

    /** Window fill above which the risk policy is enforced. */
    std::uint32_t riskEnforceWindow = 8;

    /** Verify frame hashes online instead of logging for audit. */
    bool onlineFrameVerification = false;

    /**
     * Abandoned-handshake bounds: a registration or login page
     * issues a nonce that an abandoned handshake never consumes, so
     * outstanding nonces are held in a per-shard FIFO capped at
     * maxPendingHandshakes total (oldest evicted first, like the
     * reply dedup cache) and expired once they are older than
     * handshakeTtl ticks (0 disables expiry). Submits arriving
     * after eviction are rejected as stale-nonce.
     */
    std::size_t maxPendingHandshakes = 4096;
    core::Tick handshakeTtl = core::seconds(120);
};

/** One audit-log entry (frame hash + what it should have shown). */
struct AuditEntry
{
    std::string account;
    std::uint64_t sessionId = 0;
    core::Bytes frameHash;
    std::vector<core::Bytes> expectedHashes;
};

/** The web service. */
class WebServer
{
  public:
    /**
     * @param domain   DNS-style service name ("www.xyz.com").
     * @param ca       issuing authority (also used for verification).
     * @param seed     CSPRNG seed.
     * @param rsa_bits server key size.
     */
    WebServer(std::string domain, crypto::CertificateAuthority &ca,
              std::uint64_t seed, std::size_t rsa_bits = 512,
              ServerPolicy policy = {},
              hw::DisplaySpec display = {});

    const std::string &domain() const { return domain_; }
    const crypto::Certificate &certificate() const { return cert_; }
    const crypto::RsaPublicKey &publicKey() const { return keys_.pub; }

    /**
     * Dispatch one raw request payload and return the raw reply
     * (always produces a reply; errors become ErrorReply).
     * Thread-safe: any number of callers may dispatch concurrently.
     *
     * @param from sender address for duplicate suppression. When
     *        non-empty and the request carries a non-zero id, a
     *        repeat of an already-answered (from, id) pair returns
     *        the cached original reply ("dedup-hit") instead of
     *        re-executing the handler — this is what makes device
     *        retransmissions idempotent even though nonces are
     *        consumed on first use.
     * @param now caller's simulated time, used only to stamp and
     *        expire outstanding handshake nonces (0 = no time
     *        source; entries never expire by age).
     */
    core::Bytes handle(const core::Bytes &request,
                       const std::string &from = "",
                       core::Tick now = 0);

    // --- Typed handlers (Fig. 9 / Fig. 10 steps) -----------------------

    RegistrationPage
    handleRegistrationRequest(const RegistrationRequest &request,
                              core::Tick now = 0);

    RegistrationResult
    handleRegistrationSubmit(const RegistrationSubmit &submit);

    std::optional<LoginPage> handleLoginRequest(const LoginRequest &,
                                                core::Tick now = 0);

    /** Login: returns a ContentPage on success. */
    std::optional<ContentPage> handleLoginSubmit(const LoginSubmit &);

    /** Continuous auth: each page request yields the next page. */
    std::optional<ContentPage> handlePageRequest(const PageRequest &);

    // --- Account management --------------------------------------------

    bool accountRegistered(const std::string &account) const;

    /** The Identity Reset flow: drop the public-key binding. */
    bool resetIdentity(const std::string &account);

    /**
     * Install a certificate revocation snapshot from the CA: device
     * certificates whose serials appear here are refused at
     * registration (a lost device's certificate is revoked as part
     * of the Identity Reset flow).
     */
    void installRevocationList(std::vector<std::uint64_t> serials);

    std::size_t registeredAccounts() const;
    std::size_t activeSessions() const;

    /** Outstanding (unconsumed, unevicted) handshake nonces. */
    std::size_t pendingHandshakes() const;

    /** Drop every handshake nonce issued before @p now - TTL. */
    void expireHandshakes(core::Tick now);

    // --- Audit -----------------------------------------------------------

    /**
     * Offline frame-hash audit: number of logged frames whose hash
     * does not belong to the expected view set of the page that was
     * being displayed (i.e. display-tampering detections).
     */
    std::size_t auditFrameHashes() const;

    std::size_t auditLogSize() const;

    /** Snapshot of the event counters (accepted/rejected by cause). */
    core::CounterSet counters() const;

  private:
    struct SessionState
    {
        std::string account;
        core::Bytes sessionKey;
        core::Bytes expectedNonce;
        std::string currentTag; ///< Tag of the page last served.
        /**
         * Highest request id accepted in this session. Ids are
         * device-monotonic, so after MAC verification anything at or
         * below this is a duplicate (late retransmission) and is
         * rejected rather than re-served with a fresh nonce.
         */
        std::uint64_t lastRequestId = 0;
    };

    /** One answered (from, id) pair with its original reply. */
    struct DedupEntry
    {
        std::string from;
        std::uint64_t requestId = 0;
        core::Bytes reply;
    };

    /** One outstanding handshake nonce (bounded FIFO member). */
    struct PendingNonce
    {
        core::Bytes nonce;
        core::Tick issued = 0;
    };

    /** FIFO record locating a PendingNonce for eviction/expiry. */
    struct HandshakeRef
    {
        bool login = false; ///< pendingLogin vs pendingReg.
        std::string account;
        core::Bytes nonce;
        core::Tick issued = 0;
    };

    /**
     * Account-keyed state stripe: the credential database plus the
     * outstanding registration/login nonces of the accounts hashing
     * here. One account's operations always serialize on one shard.
     */
    struct AccountShard
    {
        mutable std::mutex accountsMutex;
        std::map<std::string, crypto::RsaPublicKey> database;
        std::map<std::string, std::vector<PendingNonce>> pendingReg;
        std::map<std::string, std::vector<PendingNonce>> pendingLogin;
        /** Issue-ordered refs driving the bound + TTL eviction. */
        std::deque<HandshakeRef> handshakeFifo;
    };

    /** Session-id-keyed state stripe. */
    struct SessionShard
    {
        mutable std::mutex sessionsMutex;
        std::map<std::uint64_t, SessionState> sessions;
    };

    /** Sender-keyed reply-dedup stripe (bounded FIFO, LRU-ish). */
    struct DedupShard
    {
        mutable std::mutex dedupMutex;
        std::deque<DedupEntry> entries;
    };

    /** Deterministic page content + precomputed view hashes. */
    struct PageEntry
    {
        core::Bytes page;
        std::vector<core::Bytes> viewHashes;
    };

    static constexpr std::size_t kAccountShards = 16;
    static constexpr std::size_t kSessionShards = 16;
    static constexpr std::size_t kDedupShards = 8;
    static constexpr std::size_t kDedupPerShard = 128;
    static constexpr std::size_t kPageCacheCapacity = 256;

    static std::size_t hashKey(std::string_view key);

    AccountShard &accountShard(const std::string &account);
    const AccountShard &accountShard(const std::string &account) const;
    SessionShard &sessionShard(std::uint64_t session_id);
    DedupShard &dedupShard(const std::string &from);

    /** Route one decoded-kind payload to its typed handler. */
    core::Bytes dispatch(MsgKind kind, const core::Bytes &request,
                         std::uint64_t request_id, core::Tick now);

    /** Page content generator (deterministic per action). */
    core::Bytes pageFor(const std::string &tag) const;

    /**
     * Memoized page content + expected view hashes for a tag
     * (bounded cache; the per-request frame-hash audit cost is paid
     * once per tag instead of once per request).
     */
    std::shared_ptr<const PageEntry>
    pageEntry(const std::string &tag) const;

    core::Bytes freshNonce();

    /**
     * Record one outstanding handshake nonce and apply the bound +
     * TTL eviction policy. Caller must hold @p shard's mutex.
     */
    void recordHandshake(AccountShard &shard, bool login,
                         const std::string &account,
                         const core::Bytes &nonce, core::Tick now);

    /** Drop expired/evicted FIFO refs. Caller holds shard mutex. */
    void pruneHandshakes(AccountShard &shard, core::Tick now);

    /** Remove one nonce from a shard's maps + FIFO bookkeeping. */
    static void eraseHandshakeNonce(AccountShard &shard, bool login,
                                    const std::string &account,
                                    const core::Bytes &nonce);

    /** Build, MAC and log a content page for a session. */
    ContentPage makeContentPage(std::uint64_t session_id,
                                SessionState &session,
                                const std::string &tag,
                                std::uint64_t request_id = 0);

    ErrorReply error(const std::string &reason,
                     std::uint64_t request_id = 0);

    /**
     * Record one verdict: bump the named counter (unchanged
     * behaviour) and, when observability is on, mirror it into the
     * metrics registry and the decision audit log. Never called
     * with a shard mutex held.
     */
    void note(const std::string &event,
              const std::string &account = std::string(),
              const std::string &detail = std::string());

    void appendAuditEntry(AuditEntry entry);

    std::string domain_;
    crypto::RsaPublicKey caKey_;
    crypto::Csprng rng_;
    mutable std::mutex rngMutex_; ///< Guards rng_ after construction.
    crypto::RsaKeyPair keys_;
    crypto::Certificate cert_;
    ServerPolicy policy_;
    hw::DisplaySpec display_;
    hw::FrameHashEngine frameHash_;

    std::vector<std::unique_ptr<AccountShard>> accountShards_;
    std::vector<std::unique_ptr<SessionShard>> sessionShards_;
    std::vector<std::unique_ptr<DedupShard>> dedupShards_;
    std::atomic<std::uint64_t> nextSessionId_{1};

    mutable std::mutex pageCacheMutex_;
    mutable std::map<std::string, std::shared_ptr<const PageEntry>>
        pageCache_;
    mutable std::deque<std::string> pageCacheFifo_;

    mutable std::mutex auditMutex_;
    std::vector<AuditEntry> auditLog_;

    mutable std::mutex revocationMutex_;
    std::vector<std::uint64_t> revokedSerials_;

    mutable std::mutex countersMutex_;
    core::CounterSet counters_;
};

} // namespace trust::trust

#endif // TRUST_TRUST_SERVER_HH
