/**
 * @file
 * Identity-risk bookkeeping (Sec. IV-A).
 *
 * The paper quantifies the likelihood of identity fraud as the
 * number of touches whose fingerprints could be captured and
 * verified out of the last n touches, and proposes a window-based
 * policy: at least k of the last n consecutive touches must have
 * produced a valid fingerprint. This class maintains that sliding
 * window and derives the risk factor reported to remote servers in
 * the Fig. 10 protocol ("Risk: x out of the n touches
 * authenticated").
 */

#ifndef TRUST_TRUST_IDENTITY_RISK_HH
#define TRUST_TRUST_IDENTITY_RISK_HH

#include <cstdint>
#include <deque>

namespace trust::trust {

/** Per-touch authentication outcome (Fig. 6 pipeline exits). */
enum class TouchOutcome : std::uint8_t
{
    NotCovered = 0, ///< Touch outside every sensor tile.
    LowQuality = 1, ///< Captured but discarded by the quality gate.
    Matched = 2,    ///< Captured, extracted and matched.
    Rejected = 3,   ///< Captured with good quality but match failed.
    /**
     * Capture lost to sensor hardware faults (dead rows, stuck
     * columns, noise bursts). Like NotCovered it carries no
     * biometric evidence either way: it never enters the risk
     * window, so a failing tile degrades auth *coverage* without
     * manufacturing impostor evidence against the genuine user.
     */
    SensorDegraded = 4,
};

/** Stable lowercase name (metrics labels, audit records, tables). */
const char *toString(TouchOutcome outcome);

/** Snapshot of the current risk state. */
struct RiskReport
{
    int windowTouches = 0;   ///< Covered touches in the window.
    int matched = 0;         ///< Matched outcomes in the window.
    int rejected = 0;        ///< Good-quality non-matches.
    int lowQuality = 0;      ///< Quality-gate discards.
    std::uint64_t notCovered = 0; ///< Off-sensor touches (lifetime).
    std::uint64_t sensorDegraded = 0; ///< Hardware-fault discards (lifetime).
    double risk = 0.0;       ///< Risk factor in [0, 1] (1 = worst).
};

/** Sliding-window identity risk tracker. */
class IdentityRisk
{
  public:
    /**
     * @param window_size n, the window length in touches.
     * @param required_matches k, matches required per window.
     */
    explicit IdentityRisk(int window_size = 8, int required_matches = 2);

    int windowSize() const { return windowSize_; }
    int requiredMatches() const { return requiredMatches_; }

    /** Record the outcome of one touch. */
    void record(TouchOutcome outcome);

    /** Clear history (after re-authentication or unlock). */
    void reset();

    /** Current state. */
    RiskReport report() const;

    /**
     * The k-of-n policy check: true when the window of *covered*
     * touches is full and fewer than k of them matched. Off-sensor
     * touches carry no biometric evidence either way and never
     * enter the window (the paper's placement strategy bounds how
     * many of those occur); low-quality captures DO enter it, which
     * is precisely the defence against the low-quality-evasion
     * attack: an impostor feeding n consecutive smudged touches
     * still trips the policy.
     */
    bool violated() const;

    /**
     * Hard-failure check: true when the window contains
     * @p max_rejects or more explicit match rejections AND the
     * rejections outnumber the matches two-to-one. Genuine users
     * reject regularly (partial-print FRR is ~1/3 per touch) but
     * also match; an impostor rejects without matching.
     */
    bool hardFailure(int max_rejects = 3) const;

    /** Total touches ever recorded. */
    std::uint64_t totalTouches() const { return total_; }

  private:
    int windowSize_;
    int requiredMatches_;
    std::deque<TouchOutcome> window_;
    std::uint64_t total_ = 0;
    std::uint64_t notCovered_ = 0;
    std::uint64_t sensorDegraded_ = 0;
};

} // namespace trust::trust

#endif // TRUST_TRUST_IDENTITY_RISK_HH
