/**
 * @file
 * FLock module logic (Fig. 5): the tamper-isolated trust anchor of
 * every mobile device. Holds the build-in device key pair, the
 * biometric templates and all per-domain records in protected
 * storage; performs every protocol cryptographic operation so that
 * neither keys nor fingerprints ever reach the untrusted host SoC.
 */

#ifndef TRUST_TRUST_FLOCK_HH
#define TRUST_TRUST_FLOCK_HH

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "crypto/cert.hh"
#include "crypto/csprng.hh"
#include "crypto/rsa.hh"
#include "fingerprint/pipeline.hh"
#include "hw/flock_hw.hh"
#include "trust/identity_risk.hh"
#include "trust/messages.hh"

namespace trust::trust {

/** Configuration of a FLock module instance. */
struct FlockConfig
{
    /** Matcher settings for continuous opportunistic verification. */
    fingerprint::MatchParams matchParams;

    /**
     * Stricter matcher settings for explicit authentication events
     * (unlock, registration, login, identity-transfer authorization)
     * where a false accept grants real privileges. Defaults trade
     * a higher per-attempt FRR (the user just presses again) for a
     * much lower FAR.
     */
    fingerprint::MatchParams strictMatchParams{
        .minPairedFloor = 7, .minVotes = 18, .acceptThreshold = 0.50};

    double minCaptureQuality = 0.45; ///< Fig. 6 quality gate.
    int minMatchableMinutiae = 6;    ///< Evidence floor for matching.
    int riskWindow = 8;              ///< n of the k-of-n policy.
    int riskRequiredMatches = 2;     ///< k of the k-of-n policy.
    std::size_t rsaBits = 512;       ///< Key size (sim default).
    hw::FrameHashEngine::Algorithm frameHashAlgorithm =
        hw::FrameHashEngine::Algorithm::Sha256;
    hw::DisplaySpec display;
};

/** One enrolled view's score against a capture (see matchAll). */
struct FingerMatch
{
    int finger = 0; ///< Enrolled finger index.
    int view = 0;   ///< View index within the finger.
    fingerprint::MatchResult result;
};

/** One captured fingerprint sample handed to FLock by the sensor. */
struct CaptureSample
{
    std::vector<fingerprint::Minutia> minutiae;
    double quality = 0.0;
    bool covered = false; ///< False when no sensor saw the touch.
    /**
     * True when the capturing tile reported hardware faults (dead
     * rows, stuck columns, a noise burst) over the scanned window.
     * Degraded captures that still pass the quality gate are matched
     * normally; ones that fail it are classified SensorDegraded
     * rather than LowQuality so the fault carries no impostor
     * evidence into the risk window.
     */
    bool hardwareDegraded = false;
};

/** The FLock module. */
class FlockModule
{
  public:
    /**
     * @param device_id unique module identifier (certificate subject).
     * @param ca_key    provisioned CA root public key.
     * @param seed      entropy seed of the internal CSPRNG.
     */
    FlockModule(std::string device_id, crypto::RsaPublicKey ca_key,
                std::uint64_t seed, FlockConfig config = {});

    const std::string &deviceId() const { return deviceId_; }
    const crypto::RsaPublicKey &devicePublicKey() const
    {
        return deviceKeys_.pub;
    }
    const FlockConfig &config() const { return config_; }

    /** Install the CA-issued device certificate. */
    void installDeviceCertificate(const crypto::Certificate &cert);
    const std::optional<crypto::Certificate> &deviceCertificate() const
    {
        return deviceCert_;
    }

    // --- Local identity management (Fig. 6) ---------------------------

    /**
     * Enroll a finger: one or more minutiae views captured during
     * setup. Returns the finger index.
     */
    int enrollFinger(
        const std::vector<std::vector<fingerprint::Minutia>> &views);

    int enrolledFingerCount() const
    {
        return static_cast<int>(fingers_.size());
    }

    /**
     * Verify one capture against the enrolled fingers (any-of).
     * Pure match; does not touch the risk window.
     */
    bool verifyCapture(const CaptureSample &capture) const;

    /**
     * Score a capture against every view of every enrolled finger in
     * one batch: the query-side pair features are built once and all
     * (finger, view) comparisons run concurrently on the global
     * thread pool. Results come back in enrollment order (finger,
     * then view) and are deterministic at any thread count. This is
     * the matching hot path behind verifyCapture/processTouch and
     * therefore behind every WebServer page interaction.
     */
    std::vector<FingerMatch> matchAll(const CaptureSample &capture,
                                      bool strict = false) const;

    /**
     * Full Fig. 6 per-touch processing: coverage check, quality
     * gate, match, risk-window update. Returns the outcome.
     */
    TouchOutcome processTouch(const CaptureSample &capture);

    /** Current risk state. */
    RiskReport risk() const { return risk_.report(); }

    /** k-of-n policy violation (response should fire). */
    bool riskViolated() const { return risk_.violated(); }

    /** Hard failure: repeated explicit rejections in the window. */
    bool riskHardFailure() const { return risk_.hardFailure(); }

    /** Reset the risk window (after unlock / re-auth). */
    void resetRisk() { risk_.reset(); }

    // --- Remote identity management (Figs. 9-10) ----------------------

    /**
     * Process a registration page: verify the server certificate
     * against the CA and the page signature; on a valid fingerprint
     * capture, create the per-domain binding (fresh user key pair +
     * template + server key) and emit the signed submission.
     * Returns nullopt when verification or the capture fails.
     *
     * @param frame the actual displayed frame (repeater tap).
     * @param request_id id stamped into the submission (0 = none);
     *        retransmissions reuse the id so the server can reply
     *        idempotently.
     */
    std::optional<RegistrationSubmit>
    handleRegistrationPage(const RegistrationPage &page,
                           const std::string &account,
                           const core::Bytes &frame,
                           const CaptureSample &capture,
                           std::uint64_t now = 0,
                           std::uint64_t request_id = 0);

    /** True if a binding for @p domain exists. */
    bool hasBinding(const std::string &domain) const;

    /**
     * Process a login page: verify the stored server key's
     * signature, match the capture against the domain's bound
     * template, mint a session key and emit the login submission.
     *
     * @param request_id id stamped into the submission (0 = none).
     * @param resume     true when re-establishing a session after a
     *        network outage: the risk window is NOT reset, so the
     *        k-of-n history survives the outage and the re-handshake
     *        cannot be used to launder a bad window.
     */
    std::optional<LoginSubmit>
    handleLoginPage(const LoginPage &page, const core::Bytes &frame,
                    const CaptureSample &capture,
                    std::uint64_t request_id = 0, bool resume = false);

    /**
     * Verify and accept a content page for the domain's session:
     * checks the MAC and stores the next-request nonce.
     */
    bool acceptContentPage(const ContentPage &page);

    /**
     * Build the next authenticated page request for a touch on
     * @p action. The capture (possibly absent) first updates the
     * risk window, whose state is embedded in the request. Requires
     * an accepted content page (nonce in hand).
     */
    std::optional<PageRequest>
    makePageRequest(const std::string &domain, const std::string &action,
                    const core::Bytes &frame,
                    const CaptureSample &capture,
                    std::uint64_t request_id = 0);

    /** Decrypt a session-encrypted page body. */
    std::optional<core::Bytes>
    decryptPageContent(const std::string &domain,
                       const core::Bytes &encrypted) const;

    /** End the session for a domain (logout). */
    void endSession(const std::string &domain);

    /** True while a session is live for the domain. */
    bool sessionActive(const std::string &domain) const;

    // --- Identity transfer / reset (Sec. IV-B) -------------------------

    /**
     * Export all bindings encrypted to a new device's public key.
     * Requires a valid fingerprint capture to authorize. Hybrid
     * encryption: RSA wraps a fresh AES key, AES-CTR wraps the
     * bundle.
     */
    std::optional<core::Bytes>
    exportIdentity(const crypto::RsaPublicKey &new_device_key,
                   const CaptureSample &authorization);

    /** Import a bundle produced by another module's exportIdentity. */
    bool importIdentity(const core::Bytes &bundle);

    /** Wipe everything (lost-device reset). */
    void factoryReset();

    /** Number of stored domain bindings. */
    std::size_t bindingCount() const { return bindings_.size(); }

    /** Modeled hardware time consumed by FLock operations so far. */
    core::Tick busyTime() const { return busyTime_; }

    /** The frame hash engine (shared with benches for sizing). */
    const hw::FrameHashEngine &frameHashEngine() const
    {
        return frameHash_;
    }

  private:
    struct DomainBinding
    {
        std::string account;
        crypto::RsaKeyPair userKeys;
        crypto::RsaPublicKey serverKey;
        int fingerIndex = 0;
    };

    struct Session
    {
        core::Bytes sessionKey;
        std::uint64_t sessionId = 0;
        core::Bytes nextNonce;
        bool established = false;
        core::Bytes pendingLoginNonce;
    };

    /** Match a capture against one enrolled finger. */
    bool matchesFinger(const CaptureSample &capture, int finger,
                       bool strict = false) const;

    /**
     * Score a capture against every view of every enrolled finger
     * concurrently (batch multi-template matching on the global
     * thread pool) and return the lowest-index finger with an
     * accepted view, or -1. Deterministic at any thread count.
     */
    int firstMatchingFinger(const CaptureSample &capture,
                            bool strict) const;

    core::Bytes frameHashFor(const core::Bytes &frame);

    /** Audit/metrics for one continuous-auth outcome (obs-gated). */
    void noteTouch(TouchOutcome outcome);

    std::string deviceId_;
    crypto::RsaPublicKey caKey_;
    FlockConfig config_;
    crypto::Csprng rng_;
    crypto::RsaKeyPair deviceKeys_;
    std::optional<crypto::Certificate> deviceCert_;
    hw::FrameHashEngine frameHash_;
    hw::CryptoProcessorModel cryptoModel_;
    hw::ProtectedStore store_;

    // finger -> enrolled views, each carrying its memoized pair
    // index so continuous-auth matches skip template re-indexing.
    std::vector<std::vector<fingerprint::FingerprintTemplate>> fingers_;
    IdentityRisk risk_;
    bool lastViolated_ = false; ///< Audit: edge-detects k-of-n trips.
    std::map<std::string, DomainBinding> bindings_;
    std::map<std::string, Session> sessions_;
    core::Tick busyTime_ = 0;
};

} // namespace trust::trust

#endif // TRUST_TRUST_FLOCK_HH
