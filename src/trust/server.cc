#include "trust/server.hh"

#include <algorithm>

#include "core/logging.hh"
#include "core/obs/obs.hh"
#include "crypto/aes128.hh"
#include "crypto/hmac.hh"
#include "crypto/sha256.hh"
#include "trust/frames.hh"

namespace trust::trust {

namespace {

/** AES-CTR page encryption (mirror of FlockModule::sessionCipher). */
core::Bytes
sessionCipher(const core::Bytes &session_key, const core::Bytes &data,
              std::uint64_t counter_tag)
{
    const core::Bytes key(session_key.begin(), session_key.begin() + 16);
    core::Bytes iv(16, 0);
    for (int i = 0; i < 8; ++i)
        iv[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(counter_tag >> (8 * i));
    return crypto::Aes128(key).ctrTransform(iv, data);
}

} // namespace

WebServer::WebServer(std::string domain,
                     crypto::CertificateAuthority &ca,
                     std::uint64_t seed, std::size_t rsa_bits,
                     ServerPolicy policy, hw::DisplaySpec display)
    : domain_(std::move(domain)), caKey_(ca.rootKey()), rng_(seed),
      keys_(crypto::rsaGenerate(rsa_bits, rng_)),
      cert_(ca.issue(domain_, crypto::CertRole::WebServer, keys_.pub)),
      policy_(policy), display_(display),
      frameHash_(hw::FrameHashEngine::Algorithm::Sha256)
{
}

core::Bytes
WebServer::pageFor(const std::string &tag) const
{
    // Deterministic page body: hash-expanded from (domain, tag).
    core::Bytes seed = crypto::Sha256::digest(domain_ + "/" + tag);
    core::Bytes page;
    page.reserve(1024);
    core::Bytes block = seed;
    while (page.size() < 1024) {
        block = crypto::Sha256::digest(block);
        page.insert(page.end(), block.begin(), block.end());
    }
    page.resize(1024);
    return page;
}

core::Bytes
WebServer::freshNonce()
{
    return rng_.randomBytes(16);
}

ErrorReply
WebServer::error(const std::string &reason, std::uint64_t request_id)
{
    note("error:" + reason);
    ErrorReply reply;
    reply.requestId = request_id;
    reply.domain = domain_;
    reply.reason = reason;
    return reply;
}

void
WebServer::note(const std::string &event, const std::string &account,
                const std::string &detail)
{
    counters_.bump(event);
    if (!core::obs::enabledFast())
        return;
    core::obs::metrics()
        .counter("server/verdict", {{"event", event}})
        .add();
    // Fixed field set (absent values as "-") keeps the canonical
    // line shape identical across verdict kinds.
    core::obs::audit().record(
        domain_, "verdict",
        {{"event", event},
         {"account", account.empty() ? "-" : account},
         {"detail", detail.empty() ? "-" : detail}});
}

core::Bytes
WebServer::handle(const core::Bytes &request, const std::string &from)
{
    TRUST_SPAN("server/handle");
    const auto kind = peekKind(request);
    const auto id = peekRequestId(request);
    if (!kind || !id)
        return error("malformed").serialize();

    // Duplicate suppression: retransmissions of an already-answered
    // request get the original reply verbatim, making the handlers
    // effectively idempotent (their nonces were consumed the first
    // time). Id 0 is the "no id" sentinel and is never cached.
    const bool dedupable = !from.empty() && *id != 0;
    if (dedupable) {
        for (const auto &entry : dedupCache_) {
            if (entry.from == from && entry.requestId == *id) {
                note("dedup-hit", from);
                return entry.reply;
            }
        }
    }

    core::Bytes reply = dispatch(*kind, request, *id);
    // Error replies are never cached: one may be the product of a
    // transport-corrupted request, and the clean retransmission of
    // the same id must reach the real handler, not a stale error.
    if (dedupable && peekKind(reply) != MsgKind::ErrorReply) {
        dedupCache_.push_back({from, *id, reply});
        if (dedupCache_.size() > 128) // bound memory
            dedupCache_.pop_front();
    }
    return reply;
}

core::Bytes
WebServer::dispatch(MsgKind kind, const core::Bytes &request,
                    std::uint64_t request_id)
{
    switch (kind) {
      case MsgKind::RegistrationRequest: {
        const auto m = RegistrationRequest::deserialize(request);
        if (!m)
            return error("malformed", request_id).serialize();
        return handleRegistrationRequest(*m).serialize();
      }
      case MsgKind::RegistrationSubmit: {
        const auto m = RegistrationSubmit::deserialize(request);
        if (!m)
            return error("malformed", request_id).serialize();
        return handleRegistrationSubmit(*m).serialize();
      }
      case MsgKind::LoginRequest: {
        const auto m = LoginRequest::deserialize(request);
        if (!m)
            return error("malformed", request_id).serialize();
        const auto page = handleLoginRequest(*m);
        if (!page)
            return error("unknown-account", request_id).serialize();
        return page->serialize();
      }
      case MsgKind::LoginSubmit: {
        const auto m = LoginSubmit::deserialize(request);
        if (!m)
            return error("malformed", request_id).serialize();
        const auto page = handleLoginSubmit(*m);
        if (!page)
            return error("login-rejected", request_id).serialize();
        return page->serialize();
      }
      case MsgKind::PageRequest: {
        const auto m = PageRequest::deserialize(request);
        if (!m)
            return error("malformed", request_id).serialize();
        const auto page = handlePageRequest(*m);
        if (!page)
            return error("request-rejected", request_id).serialize();
        return page->serialize();
      }
      default:
        return error("unexpected-kind", request_id).serialize();
    }
}

RegistrationPage
WebServer::handleRegistrationRequest(const RegistrationRequest &request)
{
    note("registration-request", request.account);
    RegistrationPage page;
    page.requestId = request.requestId;
    page.domain = domain_;
    page.nonce = freshNonce();
    page.pageContent = pageFor("register");
    page.serverCert = cert_.serialize();
    page.signature = crypto::rsaSign(keys_.priv, page.signedBody());
    auto &outstanding = pendingRegNonce_[request.account];
    outstanding.push_back(page.nonce);
    if (outstanding.size() > 16) // bound state per account
        outstanding.erase(outstanding.begin());
    return page;
}

RegistrationResult
WebServer::handleRegistrationSubmit(const RegistrationSubmit &submit)
{
    RegistrationResult result;
    result.requestId = submit.requestId;
    result.domain = domain_;
    result.account = submit.account;
    result.ok = false;

    if (submit.domain != domain_) {
        result.reason = "wrong-domain";
        note("registration-rejected", submit.account, result.reason);
        return result;
    }

    auto pending = pendingRegNonce_.find(submit.account);
    auto nonce_it = pending == pendingRegNonce_.end()
                        ? std::vector<core::Bytes>::iterator{}
                        : std::find(pending->second.begin(),
                                    pending->second.end(), submit.nonce);
    if (pending == pendingRegNonce_.end() ||
        nonce_it == pending->second.end()) {
        result.reason = "stale-nonce";
        note("registration-rejected", submit.account, result.reason);
        return result;
    }

    // Verify the FLock device certificate and the submit signature.
    const auto device_cert =
        crypto::Certificate::deserialize(submit.deviceCert);
    if (!device_cert ||
        !crypto::verifyCertificate(*device_cert, caKey_, 0,
                                   crypto::CertRole::FlockDevice)) {
        result.reason = "bad-device-cert";
        note("registration-rejected", submit.account, result.reason);
        return result;
    }
    if (std::find(revokedSerials_.begin(), revokedSerials_.end(),
                  device_cert->serial) != revokedSerials_.end()) {
        result.reason = "revoked-device-cert";
        note("registration-rejected", submit.account, result.reason);
        return result;
    }
    if (!crypto::rsaVerify(device_cert->subjectKey,
                           submit.signedBody(), submit.signature)) {
        result.reason = "bad-signature";
        note("registration-rejected", submit.account, result.reason);
        return result;
    }
    const auto user_key =
        crypto::RsaPublicKey::deserialize(submit.userPublicKey);
    if (!user_key) {
        result.reason = "bad-user-key";
        note("registration-rejected", submit.account, result.reason);
        return result;
    }

    // Log the registration frame hash for audit.
    auditLog_.push_back(
        {submit.account, 0, submit.frameHash,
         expectedFrameHashes(pageFor("register"), display_,
                             frameHash_)});

    database_[submit.account] = *user_key;
    pending->second.erase(nonce_it);
    result.ok = true;
    note("registration-accepted", submit.account);
    return result;
}

std::optional<LoginPage>
WebServer::handleLoginRequest(const LoginRequest &request)
{
    if (!database_.count(request.account))
        return std::nullopt;
    note("login-request", request.account);
    LoginPage page;
    page.requestId = request.requestId;
    page.domain = domain_;
    page.nonce = freshNonce();
    page.pageContent = pageFor("login");
    page.signature = crypto::rsaSign(keys_.priv, page.signedBody());
    auto &outstanding = pendingLoginNonce_[request.account];
    outstanding.push_back(page.nonce);
    if (outstanding.size() > 16)
        outstanding.erase(outstanding.begin());
    return page;
}

ContentPage
WebServer::makeContentPage(std::uint64_t session_id,
                           SessionState &session, const std::string &tag,
                           std::uint64_t request_id)
{
    session.currentPage = pageFor(tag);
    session.expectedNonce = freshNonce();

    ContentPage page;
    page.requestId = request_id;
    page.domain = domain_;
    page.sessionId = session_id;
    page.nonce = session.expectedNonce;
    page.pageContent = sessionCipher(session.sessionKey,
                                     session.currentPage, session_id);
    page.mac = crypto::hmacSha256(session.sessionKey, page.macBody());
    return page;
}

std::optional<ContentPage>
WebServer::handleLoginSubmit(const LoginSubmit &submit)
{
    if (submit.domain != domain_)
        return std::nullopt;
    auto db = database_.find(submit.account);
    if (db == database_.end()) {
        note("login-rejected:unknown-account", submit.account);
        return std::nullopt;
    }
    auto pending = pendingLoginNonce_.find(submit.account);
    auto nonce_it = pending == pendingLoginNonce_.end()
                        ? std::vector<core::Bytes>::iterator{}
                        : std::find(pending->second.begin(),
                                    pending->second.end(), submit.nonce);
    if (pending == pendingLoginNonce_.end() ||
        nonce_it == pending->second.end()) {
        note("login-rejected:stale-nonce", submit.account);
        return std::nullopt;
    }

    // Recover the session key, then authenticate the message.
    const auto session_key =
        crypto::rsaDecrypt(keys_.priv, submit.encSessionKey);
    if (!session_key || session_key->size() != 32) {
        note("login-rejected:bad-session-key", submit.account);
        return std::nullopt;
    }
    if (!crypto::hmacSha256Verify(*session_key, submit.macBody(),
                                  submit.mac)) {
        note("login-rejected:bad-mac", submit.account);
        return std::nullopt;
    }

    pending->second.erase(nonce_it);

    const std::uint64_t session_id = nextSessionId_++;
    SessionState session;
    session.account = submit.account;
    session.sessionKey = *session_key;
    session.lastRequestId = submit.requestId;

    // Log the login frame hash.
    auditLog_.push_back(
        {submit.account, session_id, submit.frameHash,
         expectedFrameHashes(pageFor("login"), display_, frameHash_)});

    ContentPage page =
        makeContentPage(session_id, session, "home", submit.requestId);
    sessions_[session_id] = std::move(session);
    note("login-accepted", submit.account);
    return page;
}

std::optional<ContentPage>
WebServer::handlePageRequest(const PageRequest &request)
{
    if (request.domain != domain_)
        return std::nullopt;
    auto it = sessions_.find(request.sessionId);
    if (it == sessions_.end()) {
        note("request-rejected:no-session", request.account);
        return std::nullopt;
    }
    SessionState &session = it->second;
    if (session.account != request.account) {
        note("request-rejected:account-mismatch", request.account);
        return std::nullopt;
    }

    // MAC first: only the FLock module holds the session key, so a
    // valid MAC proves the request left the trusted module.
    if (!crypto::hmacSha256Verify(session.sessionKey,
                                  request.macBody(), request.mac)) {
        note("request-rejected:bad-mac", request.account);
        return std::nullopt;
    }

    // Ids are device-monotonic within a session: after the MAC has
    // proven provenance, an id at or below the last accepted one is
    // a late retransmission that slipped past the reply cache.
    if (request.requestId != 0 &&
        request.requestId <= session.lastRequestId) {
        note("request-rejected:duplicate", request.account);
        return std::nullopt;
    }

    // Nonce freshness: must echo exactly the nonce issued with the
    // previous page (replay defence).
    if (request.nonce != session.expectedNonce) {
        note("request-rejected:stale-nonce", request.account);
        return std::nullopt;
    }

    // Risk policy: the continuous-auth signal from FLock.
    if (request.riskWindow >= policy_.riskEnforceWindow &&
        request.riskMatched < policy_.minRiskMatched) {
        note("request-rejected:risk", request.account);
        return std::nullopt;
    }

    // Frame hash: log for offline audit (default) or verify online.
    const auto expected = expectedFrameHashes(session.currentPage,
                                              display_, frameHash_);
    if (policy_.onlineFrameVerification) {
        const bool known =
            std::find(expected.begin(), expected.end(),
                      request.frameHash) != expected.end();
        if (!known) {
            note("request-rejected:frame-hash", request.account);
            return std::nullopt;
        }
    }
    auditLog_.push_back({request.account, request.sessionId,
                         request.frameHash, expected});

    note("request-accepted", request.account);
    if (request.requestId != 0)
        session.lastRequestId = request.requestId;
    return makeContentPage(request.sessionId, session,
                           "page/" + request.action,
                           request.requestId);
}

bool
WebServer::accountRegistered(const std::string &account) const
{
    return database_.count(account) > 0;
}

bool
WebServer::resetIdentity(const std::string &account)
{
    // Drop the key binding and any sessions (the user re-registers
    // from the new device).
    const bool existed = database_.erase(account) > 0;
    for (auto it = sessions_.begin(); it != sessions_.end();) {
        if (it->second.account == account)
            it = sessions_.erase(it);
        else
            ++it;
    }
    if (existed)
        note("identity-reset", account);
    return existed;
}

void
WebServer::installRevocationList(std::vector<std::uint64_t> serials)
{
    revokedSerials_ = std::move(serials);
}

std::size_t
WebServer::auditFrameHashes() const
{
    std::size_t mismatches = 0;
    for (const auto &entry : auditLog_) {
        const bool known =
            std::find(entry.expectedHashes.begin(),
                      entry.expectedHashes.end(),
                      entry.frameHash) != entry.expectedHashes.end();
        if (!known)
            ++mismatches;
    }
    return mismatches;
}

} // namespace trust::trust
