#include "trust/server.hh"

#include <algorithm>

#include "core/logging.hh"
#include "core/obs/obs.hh"
#include "crypto/aes128.hh"
#include "crypto/hmac.hh"
#include "crypto/sha256.hh"
#include "trust/frames.hh"

namespace trust::trust {

namespace {

/** AES-CTR page encryption (mirror of FlockModule::sessionCipher). */
core::Bytes
sessionCipher(const core::Bytes &session_key, const core::Bytes &data,
              std::uint64_t counter_tag)
{
    const core::Bytes key(session_key.begin(), session_key.begin() + 16);
    core::Bytes iv(16, 0);
    for (int i = 0; i < 8; ++i)
        iv[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(counter_tag >> (8 * i));
    return crypto::Aes128(key).ctrTransform(iv, data);
}

} // namespace

std::size_t
WebServer::hashKey(std::string_view key)
{
    // FNV-1a: stable across platforms, so shard assignment (and with
    // it any eviction behaviour) is deterministic for a given input.
    std::uint64_t h = 14695981039346656037ull;
    for (const char c : key) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
}

WebServer::AccountShard &
WebServer::accountShard(const std::string &account)
{
    return *accountShards_[hashKey(account) % kAccountShards];
}

const WebServer::AccountShard &
WebServer::accountShard(const std::string &account) const
{
    return *accountShards_[hashKey(account) % kAccountShards];
}

WebServer::SessionShard &
WebServer::sessionShard(std::uint64_t session_id)
{
    return *sessionShards_[session_id % kSessionShards];
}

WebServer::DedupShard &
WebServer::dedupShard(const std::string &from)
{
    return *dedupShards_[hashKey(from) % kDedupShards];
}

WebServer::WebServer(std::string domain,
                     crypto::CertificateAuthority &ca,
                     std::uint64_t seed, std::size_t rsa_bits,
                     ServerPolicy policy, hw::DisplaySpec display)
    : domain_(std::move(domain)), caKey_(ca.rootKey()), rng_(seed),
      keys_(crypto::rsaGenerate(rsa_bits, rng_)),
      cert_(ca.issue(domain_, crypto::CertRole::WebServer, keys_.pub)),
      policy_(policy), display_(display),
      frameHash_(hw::FrameHashEngine::Algorithm::Sha256)
{
    accountShards_.reserve(kAccountShards);
    for (std::size_t i = 0; i < kAccountShards; ++i)
        accountShards_.push_back(std::make_unique<AccountShard>());
    sessionShards_.reserve(kSessionShards);
    for (std::size_t i = 0; i < kSessionShards; ++i)
        sessionShards_.push_back(std::make_unique<SessionShard>());
    dedupShards_.reserve(kDedupShards);
    for (std::size_t i = 0; i < kDedupShards; ++i)
        dedupShards_.push_back(std::make_unique<DedupShard>());
}

core::Bytes
WebServer::pageFor(const std::string &tag) const
{
    // Deterministic page body: hash-expanded from (domain, tag).
    core::Bytes seed = crypto::Sha256::digest(domain_ + "/" + tag);
    core::Bytes page;
    page.reserve(1024);
    core::Bytes block = seed;
    while (page.size() < 1024) {
        block = crypto::Sha256::digest(block);
        page.insert(page.end(), block.begin(), block.end());
    }
    page.resize(1024);
    return page;
}

std::shared_ptr<const WebServer::PageEntry>
WebServer::pageEntry(const std::string &tag) const
{
    {
        std::lock_guard<std::mutex> lock(pageCacheMutex_);
        const auto it = pageCache_.find(tag);
        if (it != pageCache_.end())
            return it->second;
    }
    // Build outside the lock: page expansion plus one frame hash per
    // possible view is the expensive part this cache amortises.
    // Both are pure functions of (domain, tag, display), so a lost
    // race just built the same entry twice.
    auto entry = std::make_shared<PageEntry>();
    entry->page = pageFor(tag);
    entry->viewHashes =
        expectedFrameHashes(entry->page, display_, frameHash_);
    {
        std::lock_guard<std::mutex> lock(pageCacheMutex_);
        const auto it = pageCache_.find(tag);
        if (it != pageCache_.end())
            return it->second; // lost the race; keep the incumbent
        pageCache_.emplace(tag, entry);
        pageCacheFifo_.push_back(tag);
        if (pageCacheFifo_.size() > kPageCacheCapacity) {
            pageCache_.erase(pageCacheFifo_.front());
            pageCacheFifo_.pop_front();
        }
    }
    return entry;
}

core::Bytes
WebServer::freshNonce()
{
    std::lock_guard<std::mutex> lock(rngMutex_);
    return rng_.randomBytes(16);
}

ErrorReply
WebServer::error(const std::string &reason, std::uint64_t request_id)
{
    note("error:" + reason);
    ErrorReply reply;
    reply.requestId = request_id;
    reply.domain = domain_;
    reply.reason = reason;
    return reply;
}

void
WebServer::note(const std::string &event, const std::string &account,
                const std::string &detail)
{
    {
        std::lock_guard<std::mutex> lock(countersMutex_);
        counters_.bump(event);
    }
    if (!core::obs::enabledFast())
        return;
    core::obs::metrics()
        .counter("server/verdict", {{"event", event}})
        .add();
    // Fixed field set (absent values as "-") keeps the canonical
    // line shape identical across verdict kinds.
    core::obs::audit().record(
        domain_, "verdict",
        {{"event", event},
         {"account", account.empty() ? "-" : account},
         {"detail", detail.empty() ? "-" : detail}});
}

void
WebServer::appendAuditEntry(AuditEntry entry)
{
    std::lock_guard<std::mutex> lock(auditMutex_);
    auditLog_.push_back(std::move(entry));
}

core::Bytes
WebServer::handle(const core::Bytes &request, const std::string &from,
                  core::Tick now)
{
    TRUST_SPAN("server/handle");
    const auto kind = peekKind(request);
    const auto id = peekRequestId(request);
    if (!kind || !id)
        return error("malformed").serialize();

    // Duplicate suppression: retransmissions of an already-answered
    // request get the original reply verbatim, making the handlers
    // effectively idempotent (their nonces were consumed the first
    // time). Id 0 is the "no id" sentinel and is never cached.
    const bool dedupable = !from.empty() && *id != 0;
    if (dedupable) {
        core::Bytes cached;
        bool hit = false;
        {
            DedupShard &shard = dedupShard(from);
            std::lock_guard<std::mutex> lock(shard.dedupMutex);
            for (const auto &entry : shard.entries) {
                if (entry.from == from && entry.requestId == *id) {
                    cached = entry.reply;
                    hit = true;
                    break;
                }
            }
        }
        if (hit) {
            note("dedup-hit", from);
            return cached;
        }
    }

    core::Bytes reply = dispatch(*kind, request, *id, now);
    // Error replies are never cached: one may be the product of a
    // transport-corrupted request, and the clean retransmission of
    // the same id must reach the real handler, not a stale error.
    if (dedupable && peekKind(reply) != MsgKind::ErrorReply) {
        DedupShard &shard = dedupShard(from);
        std::lock_guard<std::mutex> lock(shard.dedupMutex);
        shard.entries.push_back({from, *id, reply});
        if (shard.entries.size() > kDedupPerShard) // bound memory
            shard.entries.pop_front();
    }
    return reply;
}

core::Bytes
WebServer::dispatch(MsgKind kind, const core::Bytes &request,
                    std::uint64_t request_id, core::Tick now)
{
    switch (kind) {
      case MsgKind::RegistrationRequest: {
        const auto m = RegistrationRequest::deserialize(request);
        if (!m)
            return error("malformed", request_id).serialize();
        return handleRegistrationRequest(*m, now).serialize();
      }
      case MsgKind::RegistrationSubmit: {
        const auto m = RegistrationSubmit::deserialize(request);
        if (!m)
            return error("malformed", request_id).serialize();
        return handleRegistrationSubmit(*m).serialize();
      }
      case MsgKind::LoginRequest: {
        const auto m = LoginRequest::deserialize(request);
        if (!m)
            return error("malformed", request_id).serialize();
        const auto page = handleLoginRequest(*m, now);
        if (!page)
            return error("unknown-account", request_id).serialize();
        return page->serialize();
      }
      case MsgKind::LoginSubmit: {
        const auto m = LoginSubmit::deserialize(request);
        if (!m)
            return error("malformed", request_id).serialize();
        const auto page = handleLoginSubmit(*m);
        if (!page)
            return error("login-rejected", request_id).serialize();
        return page->serialize();
      }
      case MsgKind::PageRequest: {
        const auto m = PageRequest::deserialize(request);
        if (!m)
            return error("malformed", request_id).serialize();
        const auto page = handlePageRequest(*m);
        if (!page)
            return error("request-rejected", request_id).serialize();
        return page->serialize();
      }
      default:
        return error("unexpected-kind", request_id).serialize();
    }
}

void
WebServer::eraseHandshakeNonce(AccountShard &shard, bool login,
                               const std::string &account,
                               const core::Bytes &nonce)
{
    auto &map = login ? shard.pendingLogin : shard.pendingReg;
    const auto it = map.find(account);
    if (it == map.end())
        return;
    auto &vec = it->second;
    const auto pos = std::find_if(
        vec.begin(), vec.end(),
        [&](const PendingNonce &p) { return p.nonce == nonce; });
    if (pos != vec.end())
        vec.erase(pos);
    // Dropping the now-empty per-account vector is what keeps the
    // *map* bounded too: before this, an account that only ever
    // abandoned handshakes kept a key here forever.
    if (vec.empty())
        map.erase(it);
}

void
WebServer::pruneHandshakes(AccountShard &shard, core::Tick now)
{
    const core::Tick ttl = policy_.handshakeTtl;
    // The FIFO is issue-ordered, so expiry only ever needs to look
    // at the front. Refs whose nonce is already gone (consumed, or
    // displaced by the per-account bound) are skipped for free.
    while (!shard.handshakeFifo.empty()) {
        const HandshakeRef &front = shard.handshakeFifo.front();
        const auto &map =
            front.login ? shard.pendingLogin : shard.pendingReg;
        const auto it = map.find(front.account);
        const bool live =
            it != map.end() &&
            std::find_if(it->second.begin(), it->second.end(),
                         [&](const PendingNonce &p) {
                             return p.nonce == front.nonce;
                         }) != it->second.end();
        const bool expired =
            ttl != 0 && now > ttl && front.issued < now - ttl;
        if (!live) {
            shard.handshakeFifo.pop_front();
            continue;
        }
        if (!expired)
            break;
        eraseHandshakeNonce(shard, front.login, front.account,
                            front.nonce);
        shard.handshakeFifo.pop_front();
    }
}

void
WebServer::recordHandshake(AccountShard &shard, bool login,
                           const std::string &account,
                           const core::Bytes &nonce, core::Tick now)
{
    pruneHandshakes(shard, now);
    // Global bound, striped: each shard carries an equal slice of
    // maxPendingHandshakes, evicting its oldest ref first — the
    // same FIFO policy as the reply dedup cache. The cap applies to
    // the bookkeeping FIFO, which upper-bounds live nonces.
    const std::size_t cap = std::max<std::size_t>(
        1, policy_.maxPendingHandshakes / kAccountShards);
    while (shard.handshakeFifo.size() >= cap) {
        const HandshakeRef victim = shard.handshakeFifo.front();
        shard.handshakeFifo.pop_front();
        eraseHandshakeNonce(shard, victim.login, victim.account,
                            victim.nonce);
    }
    auto &outstanding =
        (login ? shard.pendingLogin : shard.pendingReg)[account];
    outstanding.push_back({nonce, now});
    if (outstanding.size() > 16) // bound state per account
        outstanding.erase(outstanding.begin());
    shard.handshakeFifo.push_back({login, account, nonce, now});
}

RegistrationPage
WebServer::handleRegistrationRequest(const RegistrationRequest &request,
                                     core::Tick now)
{
    note("registration-request", request.account);
    RegistrationPage page;
    page.requestId = request.requestId;
    page.domain = domain_;
    page.nonce = freshNonce();
    page.pageContent = pageEntry("register")->page;
    page.serverCert = cert_.serialize();
    page.signature = crypto::rsaSign(keys_.priv, page.signedBody());
    {
        AccountShard &shard = accountShard(request.account);
        std::lock_guard<std::mutex> lock(shard.accountsMutex);
        recordHandshake(shard, /*login=*/false, request.account,
                        page.nonce, now);
    }
    return page;
}

RegistrationResult
WebServer::handleRegistrationSubmit(const RegistrationSubmit &submit)
{
    RegistrationResult result;
    result.requestId = submit.requestId;
    result.domain = domain_;
    result.account = submit.account;
    result.ok = false;

    if (submit.domain != domain_) {
        result.reason = "wrong-domain";
        note("registration-rejected", submit.account, result.reason);
        return result;
    }

    // Phase 1 (shard lock): the nonce must be outstanding. It is
    // only *consumed* in phase 3, after the signature checks pass —
    // a failed submit leaves it available for a clean retry, which
    // matches the pre-sharding behaviour.
    {
        AccountShard &shard = accountShard(submit.account);
        std::lock_guard<std::mutex> lock(shard.accountsMutex);
        const auto pending = shard.pendingReg.find(submit.account);
        const bool live =
            pending != shard.pendingReg.end() &&
            std::find_if(pending->second.begin(),
                         pending->second.end(),
                         [&](const PendingNonce &p) {
                             return p.nonce == submit.nonce;
                         }) != pending->second.end();
        if (!live) {
            result.reason = "stale-nonce";
        }
    }
    if (!result.reason.empty()) {
        note("registration-rejected", submit.account, result.reason);
        return result;
    }

    // Phase 2 (no locks held): verify the FLock device certificate
    // and the submit signature — the expensive RSA work.
    const auto device_cert =
        crypto::Certificate::deserialize(submit.deviceCert);
    if (!device_cert ||
        !crypto::verifyCertificate(*device_cert, caKey_, 0,
                                   crypto::CertRole::FlockDevice)) {
        result.reason = "bad-device-cert";
        note("registration-rejected", submit.account, result.reason);
        return result;
    }
    bool revoked = false;
    {
        std::lock_guard<std::mutex> lock(revocationMutex_);
        revoked = std::find(revokedSerials_.begin(),
                            revokedSerials_.end(),
                            device_cert->serial) !=
                  revokedSerials_.end();
    }
    if (revoked) {
        result.reason = "revoked-device-cert";
        note("registration-rejected", submit.account, result.reason);
        return result;
    }
    if (!crypto::rsaVerify(device_cert->subjectKey,
                           submit.signedBody(), submit.signature)) {
        result.reason = "bad-signature";
        note("registration-rejected", submit.account, result.reason);
        return result;
    }
    const auto user_key =
        crypto::RsaPublicKey::deserialize(submit.userPublicKey);
    if (!user_key) {
        result.reason = "bad-user-key";
        note("registration-rejected", submit.account, result.reason);
        return result;
    }

    // Log the registration frame hash for audit.
    appendAuditEntry({submit.account, 0, submit.frameHash,
                      pageEntry("register")->viewHashes});

    // Phase 3 (shard lock): consume the nonce and commit the
    // binding. A concurrent submit of the same nonce loses the race
    // here and is rejected as stale.
    {
        AccountShard &shard = accountShard(submit.account);
        std::lock_guard<std::mutex> lock(shard.accountsMutex);
        const auto pending = shard.pendingReg.find(submit.account);
        const bool live =
            pending != shard.pendingReg.end() &&
            std::find_if(pending->second.begin(),
                         pending->second.end(),
                         [&](const PendingNonce &p) {
                             return p.nonce == submit.nonce;
                         }) != pending->second.end();
        if (!live) {
            result.reason = "stale-nonce";
        } else {
            eraseHandshakeNonce(shard, /*login=*/false,
                                submit.account, submit.nonce);
            shard.database[submit.account] = *user_key;
            result.ok = true;
        }
    }
    if (!result.ok) {
        note("registration-rejected", submit.account, result.reason);
        return result;
    }
    note("registration-accepted", submit.account);
    return result;
}

std::optional<LoginPage>
WebServer::handleLoginRequest(const LoginRequest &request,
                              core::Tick now)
{
    {
        AccountShard &shard = accountShard(request.account);
        std::lock_guard<std::mutex> lock(shard.accountsMutex);
        if (!shard.database.count(request.account))
            return std::nullopt;
    }
    note("login-request", request.account);
    LoginPage page;
    page.requestId = request.requestId;
    page.domain = domain_;
    page.nonce = freshNonce();
    page.pageContent = pageEntry("login")->page;
    page.signature = crypto::rsaSign(keys_.priv, page.signedBody());
    {
        AccountShard &shard = accountShard(request.account);
        std::lock_guard<std::mutex> lock(shard.accountsMutex);
        recordHandshake(shard, /*login=*/true, request.account,
                        page.nonce, now);
    }
    return page;
}

ContentPage
WebServer::makeContentPage(std::uint64_t session_id,
                           SessionState &session, const std::string &tag,
                           std::uint64_t request_id)
{
    session.currentTag = tag;
    session.expectedNonce = freshNonce();

    ContentPage page;
    page.requestId = request_id;
    page.domain = domain_;
    page.sessionId = session_id;
    page.nonce = session.expectedNonce;
    page.pageContent = sessionCipher(
        session.sessionKey, pageEntry(tag)->page, session_id);
    page.mac = crypto::hmacSha256(session.sessionKey, page.macBody());
    return page;
}

std::optional<ContentPage>
WebServer::handleLoginSubmit(const LoginSubmit &submit)
{
    if (submit.domain != domain_)
        return std::nullopt;

    // Phase 1 (shard lock): account known, nonce outstanding. The
    // nonce is consumed in phase 3 after the key/MAC checks.
    bool known = false;
    bool nonce_live = false;
    {
        AccountShard &shard = accountShard(submit.account);
        std::lock_guard<std::mutex> lock(shard.accountsMutex);
        known = shard.database.count(submit.account) > 0;
        const auto pending = shard.pendingLogin.find(submit.account);
        nonce_live =
            pending != shard.pendingLogin.end() &&
            std::find_if(pending->second.begin(),
                         pending->second.end(),
                         [&](const PendingNonce &p) {
                             return p.nonce == submit.nonce;
                         }) != pending->second.end();
    }
    if (!known) {
        note("login-rejected:unknown-account", submit.account);
        return std::nullopt;
    }
    if (!nonce_live) {
        note("login-rejected:stale-nonce", submit.account);
        return std::nullopt;
    }

    // Phase 2 (no locks held): recover the session key, then
    // authenticate the message.
    const auto session_key =
        crypto::rsaDecrypt(keys_.priv, submit.encSessionKey);
    if (!session_key || session_key->size() != 32) {
        note("login-rejected:bad-session-key", submit.account);
        return std::nullopt;
    }
    if (!crypto::hmacSha256Verify(*session_key, submit.macBody(),
                                  submit.mac)) {
        note("login-rejected:bad-mac", submit.account);
        return std::nullopt;
    }

    // Phase 3 (shard lock): consume the nonce; a concurrent submit
    // of the same nonce loses the race and is rejected as stale.
    bool consumed = false;
    {
        AccountShard &shard = accountShard(submit.account);
        std::lock_guard<std::mutex> lock(shard.accountsMutex);
        const auto pending = shard.pendingLogin.find(submit.account);
        if (pending != shard.pendingLogin.end() &&
            std::find_if(pending->second.begin(),
                         pending->second.end(),
                         [&](const PendingNonce &p) {
                             return p.nonce == submit.nonce;
                         }) != pending->second.end()) {
            eraseHandshakeNonce(shard, /*login=*/true, submit.account,
                                submit.nonce);
            consumed = true;
        }
    }
    if (!consumed) {
        note("login-rejected:stale-nonce", submit.account);
        return std::nullopt;
    }

    const std::uint64_t session_id =
        nextSessionId_.fetch_add(1, std::memory_order_relaxed);
    SessionState session;
    session.account = submit.account;
    session.sessionKey = *session_key;
    session.lastRequestId = submit.requestId;

    // Log the login frame hash.
    appendAuditEntry({submit.account, session_id, submit.frameHash,
                      pageEntry("login")->viewHashes});

    ContentPage page =
        makeContentPage(session_id, session, "home", submit.requestId);
    {
        SessionShard &shard = sessionShard(session_id);
        std::lock_guard<std::mutex> lock(shard.sessionsMutex);
        shard.sessions[session_id] = std::move(session);
    }
    note("login-accepted", submit.account);
    return page;
}

std::optional<ContentPage>
WebServer::handlePageRequest(const PageRequest &request)
{
    if (request.domain != domain_)
        return std::nullopt;

    // Phase 1 (shard lock): snapshot the session state.
    SessionState session;
    bool found = false;
    {
        SessionShard &shard = sessionShard(request.sessionId);
        std::lock_guard<std::mutex> lock(shard.sessionsMutex);
        const auto it = shard.sessions.find(request.sessionId);
        if (it != shard.sessions.end()) {
            session = it->second;
            found = true;
        }
    }
    if (!found) {
        note("request-rejected:no-session", request.account);
        return std::nullopt;
    }
    if (session.account != request.account) {
        note("request-rejected:account-mismatch", request.account);
        return std::nullopt;
    }

    // Phase 2 (no locks held): all verification runs against the
    // snapshot — only the FLock module holds the session key, so a
    // valid MAC proves the request left the trusted module.
    if (!crypto::hmacSha256Verify(session.sessionKey,
                                  request.macBody(), request.mac)) {
        note("request-rejected:bad-mac", request.account);
        return std::nullopt;
    }

    // Ids are device-monotonic within a session: after the MAC has
    // proven provenance, an id at or below the last accepted one is
    // a late retransmission that slipped past the reply cache.
    if (request.requestId != 0 &&
        request.requestId <= session.lastRequestId) {
        note("request-rejected:duplicate", request.account);
        return std::nullopt;
    }

    // Nonce freshness: must echo exactly the nonce issued with the
    // previous page (replay defence).
    if (request.nonce != session.expectedNonce) {
        note("request-rejected:stale-nonce", request.account);
        return std::nullopt;
    }

    // Risk policy: the continuous-auth signal from FLock.
    if (request.riskWindow >= policy_.riskEnforceWindow &&
        request.riskMatched < policy_.minRiskMatched) {
        note("request-rejected:risk", request.account);
        return std::nullopt;
    }

    // Frame hash: log for offline audit (default) or verify online.
    // The expected-view set comes from the memoized page entry, so
    // the per-request audit cost is a cache lookup, not a render.
    const auto expected = pageEntry(session.currentTag)->viewHashes;
    if (policy_.onlineFrameVerification) {
        const bool hash_known =
            std::find(expected.begin(), expected.end(),
                      request.frameHash) != expected.end();
        if (!hash_known) {
            note("request-rejected:frame-hash", request.account);
            return std::nullopt;
        }
    }
    appendAuditEntry({request.account, request.sessionId,
                      request.frameHash, expected});

    if (request.requestId != 0)
        session.lastRequestId = request.requestId;
    ContentPage page =
        makeContentPage(request.sessionId, session,
                        "page/" + request.action, request.requestId);

    // Phase 3 (shard lock): commit the rotated nonce. If another
    // thread consumed this session's nonce meanwhile (same-key
    // race), this request loses and is rejected as stale.
    bool committed = false;
    {
        SessionShard &shard = sessionShard(request.sessionId);
        std::lock_guard<std::mutex> lock(shard.sessionsMutex);
        const auto it = shard.sessions.find(request.sessionId);
        if (it != shard.sessions.end() &&
            it->second.expectedNonce == request.nonce) {
            it->second = session;
            committed = true;
        }
    }
    if (!committed) {
        note("request-rejected:stale-nonce", request.account);
        return std::nullopt;
    }
    note("request-accepted", request.account);
    return page;
}

bool
WebServer::accountRegistered(const std::string &account) const
{
    const AccountShard &shard = accountShard(account);
    std::lock_guard<std::mutex> lock(shard.accountsMutex);
    return shard.database.count(account) > 0;
}

bool
WebServer::resetIdentity(const std::string &account)
{
    // Drop the key binding and any sessions (the user re-registers
    // from the new device).
    bool existed = false;
    {
        AccountShard &shard = accountShard(account);
        std::lock_guard<std::mutex> lock(shard.accountsMutex);
        existed = shard.database.erase(account) > 0;
    }
    for (const auto &shard : sessionShards_) {
        std::lock_guard<std::mutex> lock(shard->sessionsMutex);
        for (auto it = shard->sessions.begin();
             it != shard->sessions.end();) {
            if (it->second.account == account)
                it = shard->sessions.erase(it);
            else
                ++it;
        }
    }
    if (existed)
        note("identity-reset", account);
    return existed;
}

void
WebServer::installRevocationList(std::vector<std::uint64_t> serials)
{
    std::lock_guard<std::mutex> lock(revocationMutex_);
    revokedSerials_ = std::move(serials);
}

std::size_t
WebServer::registeredAccounts() const
{
    std::size_t total = 0;
    for (const auto &shard : accountShards_) {
        std::lock_guard<std::mutex> lock(shard->accountsMutex);
        total += shard->database.size();
    }
    return total;
}

std::size_t
WebServer::activeSessions() const
{
    std::size_t total = 0;
    for (const auto &shard : sessionShards_) {
        std::lock_guard<std::mutex> lock(shard->sessionsMutex);
        total += shard->sessions.size();
    }
    return total;
}

std::size_t
WebServer::pendingHandshakes() const
{
    std::size_t total = 0;
    for (const auto &shard : accountShards_) {
        std::lock_guard<std::mutex> lock(shard->accountsMutex);
        for (const auto &[account, vec] : shard->pendingReg)
            total += vec.size();
        for (const auto &[account, vec] : shard->pendingLogin)
            total += vec.size();
    }
    return total;
}

void
WebServer::expireHandshakes(core::Tick now)
{
    for (const auto &shard : accountShards_) {
        std::lock_guard<std::mutex> lock(shard->accountsMutex);
        pruneHandshakes(*shard, now);
    }
}

std::size_t
WebServer::auditFrameHashes() const
{
    std::lock_guard<std::mutex> lock(auditMutex_);
    std::size_t mismatches = 0;
    for (const auto &entry : auditLog_) {
        const bool hash_known =
            std::find(entry.expectedHashes.begin(),
                      entry.expectedHashes.end(),
                      entry.frameHash) != entry.expectedHashes.end();
        if (!hash_known)
            ++mismatches;
    }
    return mismatches;
}

std::size_t
WebServer::auditLogSize() const
{
    std::lock_guard<std::mutex> lock(auditMutex_);
    return auditLog_.size();
}

core::CounterSet
WebServer::counters() const
{
    std::lock_guard<std::mutex> lock(countersMutex_);
    return counters_;
}

} // namespace trust::trust
