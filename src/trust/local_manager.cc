#include "trust/local_manager.hh"

namespace trust::trust {

LocalIdentityManager::LocalIdentityManager(
    hw::BiometricTouchscreen &screen, FlockModule &flock,
    ResponsePolicy policy)
    : screen_(screen), flock_(flock), policy_(policy)
{
}

bool
LocalIdentityManager::attemptUnlock(
    const touch::TouchEvent &event,
    const fingerprint::MasterFinger *finger, core::Rng &rng)
{
    counters_.bump("unlock-attempt");
    const TouchCapture capture =
        captureTouch(screen_, event, finger, rng);

    // The unlock button sits over a sensor; a touch that somehow
    // missed every tile cannot unlock.
    if (!capture.sample.covered) {
        counters_.bump("unlock-miss-sensor");
        return false;
    }
    if (!flock_.verifyCapture(capture.sample)) {
        counters_.bump("unlock-rejected");
        return false;
    }
    flock_.resetRisk();
    state_ = LockState::Unlocked;
    counters_.bump("unlock-accepted");
    return true;
}

TouchOutcome
LocalIdentityManager::processTouch(
    const touch::TouchEvent &event,
    const fingerprint::MasterFinger *finger, core::Rng &rng)
{
    const TouchCapture capture =
        captureTouch(screen_, event, finger, rng);
    const TouchOutcome outcome = flock_.processTouch(capture.sample);

    switch (outcome) {
      case TouchOutcome::Matched:
        counters_.bump("touch-matched");
        break;
      case TouchOutcome::Rejected:
        counters_.bump("touch-rejected");
        break;
      case TouchOutcome::LowQuality:
        counters_.bump("touch-low-quality");
        break;
      case TouchOutcome::NotCovered:
        counters_.bump("touch-not-covered");
        break;
      case TouchOutcome::SensorDegraded:
        counters_.bump("touch-sensor-degraded");
        break;
    }

    applyPolicy();
    return outcome;
}

void
LocalIdentityManager::applyPolicy()
{
    if (state_ != LockState::Unlocked)
        return;
    const auto risk = flock_.risk();
    if (policy_.lockOnHardFailure &&
        risk.rejected >= policy_.hardFailureRejects &&
        risk.rejected > 2 * risk.matched) {
        state_ = LockState::Locked;
        counters_.bump("lock:hard-failure");
        flock_.resetRisk();
        return;
    }
    if (policy_.lockOnWindowViolation && flock_.riskViolated()) {
        state_ = LockState::Locked;
        counters_.bump("lock:window-violation");
        flock_.resetRisk();
    }
}

} // namespace trust::trust
