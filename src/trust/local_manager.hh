/**
 * @file
 * Local identity management (Sec. IV-A, Fig. 6): unlock via a
 * fingerprint-backed button, then continuous opportunistic
 * verification of every touch, with pre-defined responses (lock the
 * device / halt interaction) when the k-of-n identity-risk policy
 * fires.
 */

#ifndef TRUST_TRUST_LOCAL_MANAGER_HH
#define TRUST_TRUST_LOCAL_MANAGER_HH

#include "core/stats.hh"
#include "trust/capture_glue.hh"

namespace trust::trust {

/** Lock state of the device UI. */
enum class LockState
{
    Locked,
    Unlocked,
};

/** What to do when risk policies fire. */
struct ResponsePolicy
{
    /** Lock when the k-of-n window is violated. */
    bool lockOnWindowViolation = true;

    /** Lock immediately on repeated explicit match rejections. */
    bool lockOnHardFailure = true;

    /** Explicit rejections within a window that count as hard. */
    int hardFailureRejects = 3;
};

/** The Fig. 6 state machine. */
class LocalIdentityManager
{
  public:
    LocalIdentityManager(hw::BiometricTouchscreen &screen,
                         FlockModule &flock,
                         ResponsePolicy policy = {});

    LockState state() const { return state_; }

    /**
     * Unlock attempt: the unlock button is displayed over a sensor
     * tile, so the touch must produce a verifiable fingerprint
     * (only an authorized user may unlock). On success the risk
     * window resets and the device unlocks.
     */
    bool attemptUnlock(const touch::TouchEvent &event,
                       const fingerprint::MasterFinger *finger,
                       core::Rng &rng);

    /**
     * One touch during normal (unlocked) interaction: runs the
     * opportunistic pipeline, updates the risk window and applies
     * the response policy. Returns the per-touch outcome.
     */
    TouchOutcome processTouch(const touch::TouchEvent &event,
                              const fingerprint::MasterFinger *finger,
                              core::Rng &rng);

    /** Risk snapshot from the FLock module. */
    RiskReport risk() const { return flock_.risk(); }

    /** Event counters (locks, outcomes, unlock attempts). */
    const core::CounterSet &counters() const { return counters_; }

  private:
    void applyPolicy();

    hw::BiometricTouchscreen &screen_;
    FlockModule &flock_;
    ResponsePolicy policy_;
    LockState state_ = LockState::Locked;
    core::CounterSet counters_;
};

} // namespace trust::trust

#endif // TRUST_TRUST_LOCAL_MANAGER_HH
