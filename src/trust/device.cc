#include "trust/device.hh"

#include "core/logging.hh"
#include "fingerprint/capture.hh"

namespace trust::trust {

MobileDevice::MobileDevice(std::string name,
                           hw::BiometricTouchscreen screen,
                           FlockModule flock, std::uint64_t seed)
    : name_(std::move(name)), screen_(std::move(screen)),
      flock_(std::move(flock)), hostRng_(seed)
{
}

void
MobileDevice::attachToNetwork(net::Network &network)
{
    network_ = &network;
    network.attach(name_, [this](const net::Message &message) {
        handleMessage(message);
    });
}

bool
MobileDevice::enrollOwner(const fingerprint::MasterFinger &finger,
                          int capture_attempts)
{
    // Setup flow: the enrollment UI draws a target over the first
    // sensor tile and asks for several deliberate (slow) touches.
    if (screen_.sensors().empty())
        return false;
    const core::Vec2 target = screen_.sensors()[0].region.center();

    std::vector<std::vector<fingerprint::Minutia>> views;
    for (int i = 0; i < capture_attempts; ++i) {
        touch::TouchEvent event;
        event.position = target;
        event.speed = 0.02; // deliberate enrollment touches
        // Enrollment is a guided setup flow: the full tile is
        // scanned so the enrolled views cover the finger area that
        // later opportunistic windows sample from.
        const double tile_mm = screen_.sensors()[0].region.width();
        const TouchCapture capture = captureTouch(
            screen_, event, &finger, hostRng_, tile_mm);
        if (capture.sample.covered &&
            capture.sample.quality >=
                flock_.config().minCaptureQuality &&
            capture.sample.minutiae.size() >= 5)
            views.push_back(capture.sample.minutiae);
    }
    if (views.empty())
        return false;
    flock_.enrollFinger(views);
    counters_.bump("owner-enrolled");
    return true;
}

core::Bytes
MobileDevice::displayFrame(const core::Bytes &page_content)
{
    // The host browser picks a view (zoom/scroll) to render.
    const auto views = standardViews();
    const auto &view = views[static_cast<std::size_t>(hostRng_.uniformInt(
        0, static_cast<std::int64_t>(views.size()) - 1))];
    core::Bytes frame = renderFrame(page_content, view,
                                    flock_.config().display);

    if (malware_.tamperFrames) {
        // Malware overlays fake content: any byte change moves the
        // frame hash outside the server's expected set.
        for (std::size_t i = 0; i < 64 && i < frame.size(); ++i)
            frame[i * 7 % frame.size()] ^= 0x5a;
        counters_.bump("malware:frame-tampered");
    }
    return frame;
}

void
MobileDevice::startRegistration(const std::string &domain,
                                const std::string &account)
{
    TRUST_ASSERT(network_, "device not attached to a network");
    pending_ = PendingOp{};
    pending_.await = Await::RegistrationPageMsg;
    pending_.domain = domain;
    pending_.account = account;
    accounts_[domain] = account;
    network_->send(name_, domain,
                   RegistrationRequest{domain, account}.serialize());
    counters_.bump("registration-started");
}

void
MobileDevice::startLogin(const std::string &domain)
{
    TRUST_ASSERT(network_, "device not attached to a network");
    auto it = registered_.find(domain);
    if (it == registered_.end() || !it->second) {
        counters_.bump("login-without-registration");
        return;
    }
    pending_ = PendingOp{};
    pending_.await = Await::LoginPageMsg;
    pending_.domain = domain;
    pending_.account = accounts_[domain];
    network_->send(name_, domain,
                   LoginRequest{domain, pending_.account}.serialize());
    counters_.bump("login-started");
}

void
MobileDevice::handleMessage(const net::Message &message)
{
    const auto kind = peekKind(message.payload);
    if (!kind) {
        counters_.bump("malformed-reply");
        return;
    }

    switch (*kind) {
      case MsgKind::RegistrationPage: {
        if (pending_.await != Await::RegistrationPageMsg)
            return;
        const auto page =
            RegistrationPage::deserialize(message.payload);
        if (!page || page->domain != pending_.domain) {
            counters_.bump("bad-registration-page");
            pending_ = PendingOp{};
            return;
        }
        pending_.regPage = *page;
        pending_.await = Await::RegistrationTouch;
        counters_.bump("registration-page-shown");
        break;
      }
      case MsgKind::RegistrationResult: {
        if (pending_.await != Await::RegistrationResultMsg)
            return;
        const auto result =
            RegistrationResult::deserialize(message.payload);
        if (result && result->ok) {
            registered_[result->domain] = true;
            counters_.bump("registration-complete");
        } else {
            counters_.bump("registration-failed");
        }
        pending_ = PendingOp{};
        break;
      }
      case MsgKind::LoginPage: {
        if (pending_.await != Await::LoginPageMsg)
            return;
        const auto page = LoginPage::deserialize(message.payload);
        if (!page || page->domain != pending_.domain) {
            counters_.bump("bad-login-page");
            pending_ = PendingOp{};
            return;
        }
        pending_.loginPage = *page;
        pending_.await = Await::LoginTouch;
        counters_.bump("login-page-shown");
        break;
      }
      case MsgKind::ContentPage: {
        const auto page = ContentPage::deserialize(message.payload);
        if (!page) {
            counters_.bump("bad-content-page");
            return;
        }
        if (!flock_.acceptContentPage(*page)) {
            counters_.bump("content-page-mac-rejected");
            pending_ = PendingOp{};
            return;
        }
        const auto plain = flock_.decryptPageContent(
            page->domain, page->pageContent);
        if (!plain) {
            counters_.bump("content-page-decrypt-failed");
            pending_ = PendingOp{};
            return;
        }
        currentPage_[page->domain] = *plain;
        currentFrame_[page->domain] = displayFrame(*plain);
        sessionIds_[page->domain] = page->sessionId;
        counters_.bump("content-page-accepted");
        pending_ = PendingOp{};
        maybeForgeRequest();
        break;
      }
      case MsgKind::ErrorReply: {
        counters_.bump("server-error-reply");
        pending_ = PendingOp{};
        break;
      }
      default:
        counters_.bump("unexpected-reply");
        break;
    }
}

void
MobileDevice::completeRegistrationTouch(
    const touch::TouchEvent &event, const fingerprint::MasterFinger *f)
{
    // A deliberate button press rests the whole fingertip on the
    // tile; scan a wider window than an incidental tap.
    const TouchCapture capture =
        captureTouch(screen_, event, f, hostRng_, 6.0);
    const core::Bytes frame =
        displayFrame(pending_.regPage->pageContent);
    const auto submit = flock_.handleRegistrationPage(
        *pending_.regPage, pending_.account, frame, capture.sample);
    if (!submit) {
        counters_.bump("registration-touch-rejected");
        pending_ = PendingOp{};
        return;
    }
    pending_.await = Await::RegistrationResultMsg;
    network_->send(name_, pending_.domain, submit->serialize());
    counters_.bump("registration-submitted");
}

void
MobileDevice::completeLoginTouch(const touch::TouchEvent &event,
                                 const fingerprint::MasterFinger *f)
{
    const TouchCapture capture =
        captureTouch(screen_, event, f, hostRng_, 6.0);
    const core::Bytes frame =
        displayFrame(pending_.loginPage->pageContent);
    const auto submit = flock_.handleLoginPage(*pending_.loginPage,
                                               frame, capture.sample);
    if (!submit) {
        counters_.bump("login-touch-rejected");
        pending_ = PendingOp{};
        return;
    }
    pending_.await = Await::LoginReplyMsg;
    network_->send(name_, pending_.domain, submit->serialize());
    counters_.bump("login-submitted");
}

void
MobileDevice::applyRiskPolicy()
{
    if (!policy_.autoLogoutOnHardFailure ||
        !flock_.riskHardFailure())
        return;
    for (auto &[domain, page] : currentPage_) {
        if (flock_.sessionActive(domain)) {
            flock_.endSession(domain);
            counters_.bump("auto-logout");
        }
    }
    flock_.resetRisk();
}

void
MobileDevice::onTouch(const touch::TouchEvent &event,
                      const fingerprint::MasterFinger *finger)
{
    switch (pending_.await) {
      case Await::RegistrationTouch:
        completeRegistrationTouch(event, finger);
        return;
      case Await::LoginTouch:
        completeLoginTouch(event, finger);
        return;
      case Await::Nothing: {
        // Free navigation: pick the first live session and issue an
        // authenticated page request for the touched element.
        for (auto &[domain, page] : currentPage_) {
            if (!flock_.sessionActive(domain))
                continue;
            const TouchCapture capture =
                captureTouch(screen_, event, finger, hostRng_);
            const std::string action =
                event.target.empty() ? "tap" : event.target;
            const auto request = flock_.makePageRequest(
                domain, action, currentFrame_[domain],
                capture.sample);
            applyRiskPolicy();
            if (!request || !flock_.sessionActive(domain)) {
                counters_.bump("page-request-unavailable");
                return;
            }
            pending_.await = Await::PageReplyMsg;
            pending_.domain = domain;
            network_->send(name_, domain, request->serialize());
            counters_.bump("page-request-sent");
            return;
        }
        counters_.bump("touch-without-session");
        return;
      }
      default: {
        // Waiting on the network; touches meanwhile still feed the
        // local risk window opportunistically.
        const TouchCapture capture =
            captureTouch(screen_, event, finger, hostRng_);
        flock_.processTouch(capture.sample);
        applyRiskPolicy();
        counters_.bump("touch-while-waiting");
        return;
      }
    }
}

void
MobileDevice::maybeForgeRequest()
{
    if (!malware_.forgeRequests || !network_)
        return;
    // Malware on the host knows account/session ids (it can read the
    // browser) but NOT the session key inside FLock: its MAC is
    // garbage and its risk field is whatever it claims.
    for (auto &[domain, session_id] : sessionIds_) {
        PageRequest forged;
        forged.domain = domain;
        // Malware can read the account string off the host browser.
        auto account_it = accounts_.find(domain);
        forged.account = account_it != accounts_.end()
                             ? account_it->second
                             : "victim";
        forged.sessionId = session_id;
        forged.nonce = hostRng_.next() % 2 ? core::Bytes(16, 0)
                                           : core::Bytes{};
        forged.action = "transfer-funds";
        forged.frameHash = core::Bytes(32, 0);
        forged.riskMatched = 8;
        forged.riskWindow = 8;
        forged.mac = core::Bytes(32, 0);
        network_->send(name_, domain, forged.serialize());
        counters_.bump("malware:request-forged");
    }
}

bool
MobileDevice::registrationComplete(const std::string &domain) const
{
    auto it = registered_.find(domain);
    return it != registered_.end() && it->second;
}

bool
MobileDevice::sessionActive(const std::string &domain) const
{
    return flock_.sessionActive(domain);
}

} // namespace trust::trust
