#include "trust/device.hh"

#include <algorithm>

#include "core/logging.hh"
#include "core/obs/obs.hh"
#include "fingerprint/capture.hh"

namespace trust::trust {

MobileDevice::MobileDevice(std::string name,
                           hw::BiometricTouchscreen screen,
                           FlockModule flock, std::uint64_t seed)
    : name_(std::move(name)), screen_(std::move(screen)),
      flock_(std::move(flock)), hostRng_(seed)
{
}

void
MobileDevice::attachToNetwork(net::Network &network)
{
    network_ = &network;
    network.attach(name_, [this](const net::Message &message) {
        handleMessage(message);
    });
}

bool
MobileDevice::enrollOwner(const fingerprint::MasterFinger &finger,
                          int capture_attempts)
{
    // Setup flow: the enrollment UI draws a target over the first
    // sensor tile and asks for several deliberate (slow) touches.
    if (screen_.sensors().empty())
        return false;
    const core::Vec2 target = screen_.sensors()[0].region.center();

    std::vector<std::vector<fingerprint::Minutia>> views;
    for (int i = 0; i < capture_attempts; ++i) {
        touch::TouchEvent event;
        event.position = target;
        event.speed = 0.02; // deliberate enrollment touches
        // Enrollment is a guided setup flow: the full tile is
        // scanned so the enrolled views cover the finger area that
        // later opportunistic windows sample from.
        const double tile_mm = screen_.sensors()[0].region.width();
        const TouchCapture capture = captureTouch(
            screen_, event, &finger, hostRng_, tile_mm);
        if (capture.sample.covered &&
            capture.sample.quality >=
                flock_.config().minCaptureQuality &&
            capture.sample.minutiae.size() >= 5)
            views.push_back(capture.sample.minutiae);
    }
    if (views.empty())
        return false;
    flock_.enrollFinger(views);
    counters_.bump("owner-enrolled");
    return true;
}

core::Bytes
MobileDevice::displayFrame(const core::Bytes &page_content)
{
    // The host browser picks a view (zoom/scroll) to render.
    const auto views = standardViews();
    const auto &view = views[static_cast<std::size_t>(hostRng_.uniformInt(
        0, static_cast<std::int64_t>(views.size()) - 1))];
    core::Bytes frame = renderFrame(page_content, view,
                                    flock_.config().display);

    if (malware_.tamperFrames) {
        // Malware overlays fake content: any byte change moves the
        // frame hash outside the server's expected set.
        for (std::size_t i = 0; i < 64 && i < frame.size(); ++i)
            frame[i * 7 % frame.size()] ^= 0x5a;
        counters_.bump("malware:frame-tampered");
    }
    return frame;
}

bool
MobileDevice::awaitingNetwork(Await await)
{
    switch (await) {
      case Await::RegistrationPageMsg:
      case Await::RegistrationResultMsg:
      case Await::LoginPageMsg:
      case Await::LoginReplyMsg:
      case Await::PageReplyMsg:
        return true;
      case Await::Nothing:
      case Await::RegistrationTouch:
      case Await::LoginTouch:
        return false;
    }
    return false;
}

void
MobileDevice::beginExchange(std::uint64_t request_id,
                            core::Bytes request)
{
    pending_.opId = ++lastOpId_;
    pending_.requestId = request_id;
    pending_.request = std::move(request);
    pending_.attempts = 1;
    pending_.nextTimeout = retryPolicy_.initialTimeout;
    if (core::obs::enabledFast()) {
        core::obs::metrics().counter("device/exchanges").add();
        core::obs::tracer().asyncBegin(
            "device/exchange", pending_.opId,
            {{"domain", pending_.domain}});
        core::obs::audit().record(
            name_, "exchange-begin",
            {{"op", std::to_string(pending_.opId)},
             {"domain", pending_.domain}});
    }
    network_->send(name_, pending_.domain, pending_.request);
    armRetryTimer();
}

void
MobileDevice::noteExchangeEnd(const char *result)
{
    if (!core::obs::enabledFast() || pending_.opId == 0)
        return;
    core::obs::tracer().asyncEnd("device/exchange", pending_.opId,
                                 {{"result", result}});
    core::obs::audit().record(
        name_, "exchange-end",
        {{"op", std::to_string(pending_.opId)},
         {"result", result},
         {"attempts", std::to_string(pending_.attempts)}});
}

void
MobileDevice::armRetryTimer()
{
    const double jitter =
        1.0 +
        retryPolicy_.jitterFraction * (2.0 * hostRng_.uniform() - 1.0);
    const auto wait = static_cast<core::Tick>(
        static_cast<double>(pending_.nextTimeout) * jitter);
    const std::uint64_t op_id = pending_.opId;
    // The event queue has no cancellation: a timer outliving its
    // exchange fires as a no-op because the opId no longer matches.
    network_->queue().scheduleAfter(
        wait, [this, op_id] { onOpTimeout(op_id); });
}

void
MobileDevice::onOpTimeout(std::uint64_t op_id)
{
    if (op_id != pending_.opId || !awaitingNetwork(pending_.await))
        return; // stale timer: the exchange already finished
    if (pending_.attempts >= retryPolicy_.maxAttempts) {
        counters_.bump("op-retry-exhausted");
        if (core::obs::enabledFast())
            core::obs::metrics()
                .counter("device/retry-exhausted")
                .add();
        noteExchangeEnd("retry-exhausted");
        lastError_ = OpError::RetryExhausted;
        if (pending_.await == Await::LoginReplyMsg ||
            pending_.await == Await::PageReplyMsg)
            needsResume_[pending_.domain] = true;
        pending_ = PendingOp{};
        return;
    }
    ++pending_.attempts;
    network_->send(name_, pending_.domain, pending_.request);
    counters_.bump("op-retransmit");
    if (core::obs::enabledFast()) {
        core::obs::metrics().counter("device/retransmit").add();
        core::obs::tracer().instant(
            "device/retransmit",
            {{"op", std::to_string(pending_.opId)},
             {"attempt", std::to_string(pending_.attempts)}});
        core::obs::audit().record(
            name_, "retransmit",
            {{"op", std::to_string(pending_.opId)},
             {"attempt", std::to_string(pending_.attempts)},
             {"timeout", std::to_string(pending_.nextTimeout)}});
    }
    const auto next = static_cast<core::Tick>(
        static_cast<double>(pending_.nextTimeout) *
        retryPolicy_.backoffFactor);
    pending_.nextTimeout = std::min(next, retryPolicy_.maxTimeout);
    armRetryTimer();
}

void
MobileDevice::startRegistration(const std::string &domain,
                                const std::string &account)
{
    TRUST_ASSERT(network_, "device not attached to a network");
    pending_ = PendingOp{};
    pending_.await = Await::RegistrationPageMsg;
    pending_.domain = domain;
    pending_.account = account;
    accounts_[domain] = account;
    RegistrationRequest request;
    request.requestId = nextRequestId();
    request.domain = domain;
    request.account = account;
    beginExchange(request.requestId, request.serialize());
    counters_.bump("registration-started");
}

void
MobileDevice::startLoginInternal(const std::string &domain,
                                 bool resume)
{
    TRUST_ASSERT(network_, "device not attached to a network");
    auto it = registered_.find(domain);
    if (it == registered_.end() || !it->second) {
        counters_.bump("login-without-registration");
        return;
    }
    pending_ = PendingOp{};
    pending_.await = Await::LoginPageMsg;
    pending_.domain = domain;
    pending_.account = accounts_[domain];
    pending_.resume = resume;
    LoginRequest request;
    request.requestId = nextRequestId();
    request.domain = domain;
    request.account = pending_.account;
    beginExchange(request.requestId, request.serialize());
    counters_.bump(resume ? "session-resume-started"
                          : "login-started");
}

void
MobileDevice::startLogin(const std::string &domain)
{
    startLoginInternal(domain, /*resume=*/false);
}

bool
MobileDevice::sessionNeedsResume(const std::string &domain) const
{
    auto it = needsResume_.find(domain);
    return it != needsResume_.end() && it->second;
}

void
MobileDevice::resumeSession(const std::string &domain)
{
    startLoginInternal(domain, /*resume=*/true);
}

void
MobileDevice::handleMessage(const net::Message &message)
{
    // Decode failures and id mismatches never tear down the pending
    // exchange: the armed retransmission (and the server's reply
    // cache) recover from lost, duplicated or corrupted replies.
    const auto kind = peekKind(message.payload);
    const auto reply_id = peekRequestId(message.payload);
    if (!kind || !reply_id) {
        counters_.bump("malformed-reply");
        return;
    }

    switch (*kind) {
      case MsgKind::RegistrationPage: {
        if (pending_.await != Await::RegistrationPageMsg ||
            *reply_id != pending_.requestId) {
            counters_.bump("stale-reply");
            return;
        }
        const auto page =
            RegistrationPage::deserialize(message.payload);
        if (!page || page->domain != pending_.domain) {
            counters_.bump("bad-registration-page");
            lastError_ = OpError::BadReply;
            return;
        }
        noteExchangeEnd("registration-page");
        pending_.regPage = *page;
        pending_.await = Await::RegistrationTouch;
        counters_.bump("registration-page-shown");
        break;
      }
      case MsgKind::RegistrationResult: {
        if (pending_.await != Await::RegistrationResultMsg ||
            *reply_id != pending_.requestId) {
            counters_.bump("stale-reply");
            return;
        }
        const auto result =
            RegistrationResult::deserialize(message.payload);
        if (!result) {
            counters_.bump("bad-registration-result");
            lastError_ = OpError::BadReply;
            return;
        }
        noteExchangeEnd(result->ok ? "registration-ok"
                                   : "registration-failed");
        if (result->ok) {
            registered_[result->domain] = true;
            counters_.bump("registration-complete");
            lastError_ = OpError::None;
        } else {
            counters_.bump("registration-failed");
            lastError_ = OpError::ServerError;
        }
        pending_ = PendingOp{};
        break;
      }
      case MsgKind::LoginPage: {
        if (pending_.await != Await::LoginPageMsg ||
            *reply_id != pending_.requestId) {
            counters_.bump("stale-reply");
            return;
        }
        const auto page = LoginPage::deserialize(message.payload);
        if (!page || page->domain != pending_.domain) {
            counters_.bump("bad-login-page");
            lastError_ = OpError::BadReply;
            return;
        }
        noteExchangeEnd("login-page");
        pending_.loginPage = *page;
        pending_.await = Await::LoginTouch;
        counters_.bump("login-page-shown");
        break;
      }
      case MsgKind::ContentPage: {
        if ((pending_.await != Await::LoginReplyMsg &&
             pending_.await != Await::PageReplyMsg) ||
            *reply_id != pending_.requestId) {
            // Duplicate delivery of an already-consumed page: FLock
            // must not re-accept it (its nonce would regress).
            counters_.bump("stale-reply");
            return;
        }
        const auto page = ContentPage::deserialize(message.payload);
        if (!page) {
            counters_.bump("bad-content-page");
            lastError_ = OpError::BadReply;
            return;
        }
        if (!flock_.acceptContentPage(*page)) {
            counters_.bump("content-page-mac-rejected");
            lastError_ = OpError::BadReply;
            return;
        }
        const auto plain = flock_.decryptPageContent(
            page->domain, page->pageContent);
        if (!plain) {
            counters_.bump("content-page-decrypt-failed");
            lastError_ = OpError::BadReply;
            return;
        }
        noteExchangeEnd("content-page");
        currentPage_[page->domain] = *plain;
        currentFrame_[page->domain] = displayFrame(*plain);
        sessionIds_[page->domain] = page->sessionId;
        counters_.bump("content-page-accepted");
        lastError_ = OpError::None;
        needsResume_[page->domain] = false;
        pending_ = PendingOp{};
        maybeForgeRequest();
        break;
      }
      case MsgKind::ErrorReply: {
        if (!awaitingNetwork(pending_.await) ||
            *reply_id != pending_.requestId) {
            // An error for somebody else's request (e.g. a reply to
            // malware-forged traffic) must not stomp a genuine
            // in-flight exchange.
            counters_.bump("unmatched-error-reply");
            return;
        }
        const auto reply = ErrorReply::deserialize(message.payload);
        if (reply && reply->reason == "malformed") {
            // The server could not even parse the request, yet the
            // id survived: the payload was damaged in transit. The
            // armed retransmission resends the intact bytes.
            counters_.bump("corrupted-request-reply");
            return;
        }
        noteExchangeEnd("server-error");
        counters_.bump("server-error-reply");
        lastError_ = OpError::ServerError;
        pending_ = PendingOp{};
        break;
      }
      default:
        counters_.bump("unexpected-reply");
        break;
    }
}

void
MobileDevice::completeRegistrationTouch(
    const touch::TouchEvent &event, const fingerprint::MasterFinger *f)
{
    // A deliberate button press rests the whole fingertip on the
    // tile; scan a wider window than an incidental tap.
    const TouchCapture capture =
        captureTouch(screen_, event, f, hostRng_, 6.0);
    const core::Bytes frame =
        displayFrame(pending_.regPage->pageContent);
    const auto submit = flock_.handleRegistrationPage(
        *pending_.regPage, pending_.account, frame, capture.sample,
        /*now=*/0, nextRequestId());
    if (!submit) {
        counters_.bump("registration-touch-rejected");
        pending_ = PendingOp{};
        return;
    }
    pending_.await = Await::RegistrationResultMsg;
    beginExchange(submit->requestId, submit->serialize());
    counters_.bump("registration-submitted");
}

void
MobileDevice::completeLoginTouch(const touch::TouchEvent &event,
                                 const fingerprint::MasterFinger *f)
{
    const TouchCapture capture =
        captureTouch(screen_, event, f, hostRng_, 6.0);
    const core::Bytes frame =
        displayFrame(pending_.loginPage->pageContent);
    const auto submit = flock_.handleLoginPage(
        *pending_.loginPage, frame, capture.sample, nextRequestId(),
        pending_.resume);
    if (!submit) {
        counters_.bump("login-touch-rejected");
        pending_ = PendingOp{};
        return;
    }
    pending_.await = Await::LoginReplyMsg;
    beginExchange(submit->requestId, submit->serialize());
    counters_.bump("login-submitted");
}

void
MobileDevice::applyRiskPolicy()
{
    if (!policy_.autoLogoutOnHardFailure ||
        !flock_.riskHardFailure())
        return;
    for (auto &[domain, page] : currentPage_) {
        if (flock_.sessionActive(domain)) {
            flock_.endSession(domain);
            counters_.bump("auto-logout");
        }
    }
    flock_.resetRisk();
}

void
MobileDevice::onTouch(const touch::TouchEvent &event,
                      const fingerprint::MasterFinger *finger)
{
    switch (pending_.await) {
      case Await::RegistrationTouch:
        completeRegistrationTouch(event, finger);
        return;
      case Await::LoginTouch:
        completeLoginTouch(event, finger);
        return;
      case Await::Nothing: {
        // Free navigation: pick the first live session and issue an
        // authenticated page request for the touched element.
        for (auto &[domain, page] : currentPage_) {
            if (!flock_.sessionActive(domain))
                continue;
            const TouchCapture capture =
                captureTouch(screen_, event, finger, hostRng_);
            const std::string action =
                event.target.empty() ? "tap" : event.target;
            const auto request = flock_.makePageRequest(
                domain, action, currentFrame_[domain],
                capture.sample, nextRequestId());
            applyRiskPolicy();
            if (!request || !flock_.sessionActive(domain)) {
                counters_.bump("page-request-unavailable");
                return;
            }
            pending_.await = Await::PageReplyMsg;
            pending_.domain = domain;
            beginExchange(request->requestId, request->serialize());
            counters_.bump("page-request-sent");
            return;
        }
        counters_.bump("touch-without-session");
        return;
      }
      default: {
        // Waiting on the network; touches meanwhile still feed the
        // local risk window opportunistically.
        const TouchCapture capture =
            captureTouch(screen_, event, finger, hostRng_);
        flock_.processTouch(capture.sample);
        applyRiskPolicy();
        counters_.bump("touch-while-waiting");
        return;
      }
    }
}

void
MobileDevice::maybeForgeRequest()
{
    if (!malware_.forgeRequests || !network_)
        return;
    // Malware on the host knows account/session ids (it can read the
    // browser) but NOT the session key inside FLock: its MAC is
    // garbage and its risk field is whatever it claims.
    for (auto &[domain, session_id] : sessionIds_) {
        PageRequest forged;
        forged.domain = domain;
        // Malware can read the account string off the host browser.
        auto account_it = accounts_.find(domain);
        forged.account = account_it != accounts_.end()
                             ? account_it->second
                             : "victim";
        forged.sessionId = session_id;
        forged.nonce = hostRng_.next() % 2 ? core::Bytes(16, 0)
                                           : core::Bytes{};
        forged.action = "transfer-funds";
        forged.frameHash = core::Bytes(32, 0);
        forged.riskMatched = 8;
        forged.riskWindow = 8;
        forged.mac = core::Bytes(32, 0);
        network_->send(name_, domain, forged.serialize());
        counters_.bump("malware:request-forged");
    }
}

bool
MobileDevice::registrationComplete(const std::string &domain) const
{
    auto it = registered_.find(domain);
    return it != registered_.end() && it->second;
}

bool
MobileDevice::sessionActive(const std::string &domain) const
{
    return flock_.sessionActive(domain);
}

} // namespace trust::trust
