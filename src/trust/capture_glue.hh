/**
 * @file
 * Glue between the hardware capture path and the FLock biometric
 * logic: turns a touch event on the biometric touchscreen into the
 * CaptureSample the FLock fingerprint processor consumes.
 */

#ifndef TRUST_TRUST_CAPTURE_GLUE_HH
#define TRUST_TRUST_CAPTURE_GLUE_HH

#include "core/rng.hh"
#include "fingerprint/synthesis.hh"
#include "hw/biometric_screen.hh"
#include "touch/event.hh"
#include "trust/flock.hh"

namespace trust::trust {

/** Capture plus the hardware-side latency it cost. */
struct TouchCapture
{
    CaptureSample sample;
    hw::OpportunisticCapture hardware;
};

/**
 * Run the opportunistic capture sequence for one touch: the panel
 * localizes the touch, a covering sensor tile (if any) scans a
 * window, and the impression is modeled from the physical finger.
 *
 * @param finger the physical finger touching, or nullptr for a
 *               non-biometric contact (stylus, knuckle, glove) that
 *               yields no usable print.
 */
TouchCapture captureTouch(hw::BiometricTouchscreen &screen,
                          const touch::TouchEvent &event,
                          const fingerprint::MasterFinger *finger,
                          core::Rng &rng, double window_mm = 4.0);

} // namespace trust::trust

#endif // TRUST_TRUST_CAPTURE_GLUE_HH
