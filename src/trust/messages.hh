/**
 * @file
 * TRUST wire messages: the concrete encoding of the registration
 * flow (Fig. 9) and the continuous-authentication flow (Fig. 10).
 *
 * Authenticity layers follow the paper: pages sent by the Web
 * Server are RSA-signed with its private key; the registration
 * submission is RSA-signed with the FLock device key; session-phase
 * messages carry an HMAC under the negotiated session key. Every
 * message embeds the current nonce so replays are detectable.
 */

#ifndef TRUST_TRUST_MESSAGES_HH
#define TRUST_TRUST_MESSAGES_HH

#include <optional>
#include <string>

#include "core/bytes.hh"

namespace trust::trust {

/** Message discriminator (first payload byte). */
enum class MsgKind : std::uint8_t
{
    RegistrationRequest = 1,
    RegistrationPage = 2,
    RegistrationSubmit = 3,
    RegistrationResult = 4,
    LoginRequest = 5,
    LoginPage = 6,
    LoginSubmit = 7,
    ContentPage = 8,
    PageRequest = 9,
    ErrorReply = 10,
};

/** Read the kind byte of a raw payload (nullopt if empty/unknown). */
std::optional<MsgKind> peekKind(const core::Bytes &payload);

/**
 * Read the request id (second wire field of every message) without
 * a full decode; nullopt on truncated payloads. Ids are assigned
 * monotonically by the sending device, echoed verbatim in replies,
 * and are the key of the server's duplicate-suppression cache; 0
 * means "no id" and is never deduplicated.
 */
std::optional<std::uint64_t> peekRequestId(const core::Bytes &payload);

/** Device -> server: start account binding. */
struct RegistrationRequest
{
    std::uint64_t requestId = 0; ///< Sender-monotonic id (0 = none).
    std::string domain;
    std::string account;

    core::Bytes serialize() const;
    static std::optional<RegistrationRequest>
    deserialize(const core::Bytes &payload);
};

/** Server -> device: registration page + certificate + nonce. */
struct RegistrationPage
{
    std::uint64_t requestId = 0; ///< Sender-monotonic id (0 = none).
    std::string domain;
    core::Bytes nonce;       ///< Fresh 16-byte server nonce.
    core::Bytes pageContent; ///< Hyper-text page bytes.
    core::Bytes serverCert;  ///< CA-signed server certificate.
    core::Bytes signature;   ///< Server RSA signature over body.

    /** The byte string the signature covers. */
    core::Bytes signedBody() const;

    core::Bytes serialize() const;
    static std::optional<RegistrationPage>
    deserialize(const core::Bytes &payload);
};

/** Device -> server: the Fig. 9 binding submission. */
struct RegistrationSubmit
{
    std::uint64_t requestId = 0; ///< Sender-monotonic id (0 = none).
    std::string domain;
    std::string account;
    core::Bytes nonce;      ///< Echo of the server nonce.
    core::Bytes deviceCert; ///< CA-signed FLock device certificate.
    core::Bytes userPublicKey; ///< Fresh per-(user,domain) key.
    core::Bytes frameHash;  ///< Hash of the displayed frame.
    core::Bytes signature;  ///< FLock device RSA signature.

    core::Bytes signedBody() const;

    core::Bytes serialize() const;
    static std::optional<RegistrationSubmit>
    deserialize(const core::Bytes &payload);
};

/** Server -> device: binding outcome. */
struct RegistrationResult
{
    std::uint64_t requestId = 0; ///< Sender-monotonic id (0 = none).
    std::string domain;
    std::string account;
    bool ok = false;
    std::string reason;

    core::Bytes serialize() const;
    static std::optional<RegistrationResult>
    deserialize(const core::Bytes &payload);
};

/** Device -> server: request the login page. */
struct LoginRequest
{
    std::uint64_t requestId = 0; ///< Sender-monotonic id (0 = none).
    std::string domain;
    std::string account;

    core::Bytes serialize() const;
    static std::optional<LoginRequest>
    deserialize(const core::Bytes &payload);
};

/** Server -> device: login page with a fresh nonce. */
struct LoginPage
{
    std::uint64_t requestId = 0; ///< Sender-monotonic id (0 = none).
    std::string domain;
    core::Bytes nonce;
    core::Bytes pageContent;
    core::Bytes signature; ///< Server RSA signature over body.

    core::Bytes signedBody() const;

    core::Bytes serialize() const;
    static std::optional<LoginPage>
    deserialize(const core::Bytes &payload);
};

/** Device -> server: the Fig. 10 login submission. */
struct LoginSubmit
{
    std::uint64_t requestId = 0; ///< Sender-monotonic id (0 = none).
    std::string domain;
    std::string account;
    core::Bytes nonce;          ///< Echo of the login nonce.
    core::Bytes encSessionKey;  ///< RSA(server_pub, session key).
    core::Bytes frameHash;      ///< Hash of the displayed login frame.
    std::uint32_t riskMatched = 0; ///< x of "x out of n".
    std::uint32_t riskWindow = 0;  ///< n of "x out of n".
    core::Bytes mac;            ///< HMAC(session key, body).

    core::Bytes macBody() const;

    core::Bytes serialize() const;
    static std::optional<LoginSubmit>
    deserialize(const core::Bytes &payload);
};

/** Server -> device: content page inside a session. */
struct ContentPage
{
    std::uint64_t requestId = 0; ///< Sender-monotonic id (0 = none).
    std::string domain;
    std::uint64_t sessionId = 0;
    core::Bytes nonce;       ///< Nonce for the *next* request.
    core::Bytes pageContent; ///< Encrypted under the session key.
    core::Bytes mac;         ///< HMAC(session key, body).

    core::Bytes macBody() const;

    core::Bytes serialize() const;
    static std::optional<ContentPage>
    deserialize(const core::Bytes &payload);
};

/** Device -> server: one continuous-auth page request (Fig. 10). */
struct PageRequest
{
    std::uint64_t requestId = 0; ///< Sender-monotonic id (0 = none).
    std::string domain;
    std::string account;
    std::uint64_t sessionId = 0;
    core::Bytes nonce;     ///< Echo of the last issued nonce.
    std::string action;    ///< What the user tapped (link id).
    core::Bytes frameHash; ///< Hash of the frame the user acted on.
    std::uint32_t riskMatched = 0;
    std::uint32_t riskWindow = 0;
    core::Bytes mac;       ///< HMAC(session key, body).

    core::Bytes macBody() const;

    core::Bytes serialize() const;
    static std::optional<PageRequest>
    deserialize(const core::Bytes &payload);
};

/** Server -> device: rejection (bad MAC, stale nonce, risk...). */
struct ErrorReply
{
    std::uint64_t requestId = 0; ///< Sender-monotonic id (0 = none).
    std::string domain;
    std::string reason;

    core::Bytes serialize() const;
    static std::optional<ErrorReply>
    deserialize(const core::Bytes &payload);
};

} // namespace trust::trust

#endif // TRUST_TRUST_MESSAGES_HH
