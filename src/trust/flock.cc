#include "trust/flock.hh"

#include <algorithm>

#include "core/logging.hh"
#include "core/obs/obs.hh"
#include "core/parallel.hh"
#include "crypto/aes128.hh"
#include "crypto/hmac.hh"
#include "crypto/sha256.hh"
#include "fingerprint/minutiae.hh"

namespace trust::trust {

namespace {

/** Modeled fingerprint-processor time for one template match. */
constexpr core::Tick kMatchLatency = core::milliseconds(3);

/** AES-CTR helper keyed by the 32-byte session key (first 16B). */
core::Bytes
sessionCipher(const core::Bytes &session_key, const core::Bytes &data,
              std::uint64_t counter_tag)
{
    TRUST_ASSERT(session_key.size() >= 16,
                 "sessionCipher: key too short");
    const core::Bytes key(session_key.begin(), session_key.begin() + 16);
    core::Bytes iv(16, 0);
    for (int i = 0; i < 8; ++i)
        iv[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(counter_tag >> (8 * i));
    return crypto::Aes128(key).ctrTransform(iv, data);
}

} // namespace

FlockModule::FlockModule(std::string device_id,
                         crypto::RsaPublicKey ca_key, std::uint64_t seed,
                         FlockConfig config)
    : deviceId_(std::move(device_id)), caKey_(std::move(ca_key)),
      config_(config), rng_(seed),
      deviceKeys_(crypto::rsaGenerate(config.rsaBits, rng_)),
      frameHash_(config.frameHashAlgorithm),
      risk_(config.riskWindow, config.riskRequiredMatches)
{
    busyTime_ += cryptoModel_.rsaKeygen1024;
}

void
FlockModule::installDeviceCertificate(const crypto::Certificate &cert)
{
    TRUST_ASSERT(cert.subjectKey == deviceKeys_.pub,
                 "installDeviceCertificate: certificate for another key");
    deviceCert_ = cert;
    store_.put("device/cert", cert.serialize());
}

int
FlockModule::enrollFinger(
    const std::vector<std::vector<fingerprint::Minutia>> &views)
{
    TRUST_ASSERT(!views.empty(), "enrollFinger: no views");
    std::vector<fingerprint::FingerprintTemplate> templates;
    templates.reserve(views.size());
    for (const auto &view : views) {
        fingerprint::FingerprintTemplate t(view);
        // Pay the pair-indexing cost once here so every later match
        // (continuous auth runs thousands) reuses the memoized index.
        t.pairIndex(config_.matchParams);
        templates.push_back(std::move(t));
    }
    fingers_.push_back(std::move(templates));
    const int index = static_cast<int>(fingers_.size()) - 1;
    // Persist templates in the protected store.
    core::ByteWriter w;
    w.writeU32(static_cast<std::uint32_t>(views.size()));
    for (const auto &view : views)
        w.writeBytes(fingerprint::serializeMinutiae(view));
    store_.put("finger/" + std::to_string(index), w.take());
    busyTime_ += store_.writeLatency();
    return index;
}

bool
FlockModule::matchesFinger(const CaptureSample &capture, int finger,
                           bool strict) const
{
    const auto &views = fingers_[static_cast<std::size_t>(finger)];
    return fingerprint::matchBestTemplate(
               views, capture.minutiae,
               strict ? config_.strictMatchParams
                      : config_.matchParams)
        .accepted;
}

std::vector<FingerMatch>
FlockModule::matchAll(const CaptureSample &capture, bool strict) const
{
    TRUST_SPAN("flock/match");
    const auto &params =
        strict ? config_.strictMatchParams : config_.matchParams;

    // Flatten (finger, view) so one batch covers every enrolled
    // template; the query-side pair features are built once inside
    // matchTemplatesBatch and shared by every comparison.
    std::vector<FingerMatch> out;
    std::vector<const fingerprint::FingerprintTemplate *> flat;
    for (std::size_t f = 0; f < fingers_.size(); ++f) {
        for (std::size_t v = 0; v < fingers_[f].size(); ++v) {
            out.push_back({static_cast<int>(f), static_cast<int>(v), {}});
            flat.push_back(&fingers_[f][v]);
        }
    }
    const auto results = fingerprint::matchTemplatesBatch(
        flat, capture.minutiae, params);
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i].result = results[i];
    return out;
}

int
FlockModule::firstMatchingFinger(const CaptureSample &capture,
                                 bool strict) const
{
    // matchAll returns enrollment order, so the first accepted entry
    // is the lowest-index matching finger regardless of thread count.
    for (const FingerMatch &m : matchAll(capture, strict))
        if (m.result.accepted)
            return m.finger;
    return -1;
}

bool
FlockModule::verifyCapture(const CaptureSample &capture) const
{
    if (!capture.covered || capture.quality < config_.minCaptureQuality)
        return false;
    return firstMatchingFinger(capture, /*strict=*/true) >= 0;
}

TouchOutcome
FlockModule::processTouch(const CaptureSample &capture)
{
    TRUST_SPAN("flock/process-touch");
    TouchOutcome outcome;
    if (!capture.covered) {
        outcome = TouchOutcome::NotCovered;
    } else if (capture.quality < config_.minCaptureQuality ||
               capture.minutiae.size() <
                   static_cast<std::size_t>(
                       config_.minMatchableMinutiae)) {
        // Too little ridge evidence to judge either way: treat as a
        // quality discard, not as contradicting evidence. When the
        // loss is attributable to sensor hardware faults the capture
        // is excluded from the window entirely — a failing tile must
        // degrade coverage, not manufacture impostor evidence.
        outcome = capture.hardwareDegraded
                      ? TouchOutcome::SensorDegraded
                      : TouchOutcome::LowQuality;
    } else {
        busyTime_ += kMatchLatency;
        const bool matched =
            firstMatchingFinger(capture, /*strict=*/false) >= 0;
        outcome = matched ? TouchOutcome::Matched
                          : TouchOutcome::Rejected;
    }
    risk_.record(outcome);
    noteTouch(outcome);
    return outcome;
}

void
FlockModule::noteTouch(TouchOutcome outcome)
{
    if (!core::obs::enabledFast())
        return;
    namespace obs = core::obs;
    obs::metrics()
        .counter("flock/touch", {{"outcome", toString(outcome)}})
        .add();
    const RiskReport rr = risk_.report();
    const bool violated = risk_.violated();
    obs::audit().record(
        deviceId_, "touch",
        {{"outcome", toString(outcome)},
         {"matched", std::to_string(rr.matched)},
         {"window", std::to_string(rr.windowTouches)},
         {"violated", violated ? "1" : "0"},
         {"hard", risk_.hardFailure() ? "1" : "0"}});
    if (violated != lastViolated_) {
        // Edge-record every k-of-n transition: these are the events
        // a lock post-mortem replays first.
        lastViolated_ = violated;
        obs::audit().record(
            deviceId_, "risk-transition",
            {{"violated", violated ? "1" : "0"},
             {"matched", std::to_string(rr.matched)},
             {"window", std::to_string(rr.windowTouches)}});
        obs::tracer().instant("flock/risk-transition",
                              {{"violated", violated ? "1" : "0"}});
    }
}

core::Bytes
FlockModule::frameHashFor(const core::Bytes &frame)
{
    busyTime_ += frameHash_.hashLatency(
        static_cast<std::int64_t>(frame.size()));
    return frameHash_.hashFrame(frame);
}

std::optional<RegistrationSubmit>
FlockModule::handleRegistrationPage(const RegistrationPage &page,
                                    const std::string &account,
                                    const core::Bytes &frame,
                                    const CaptureSample &capture,
                                    std::uint64_t now,
                                    std::uint64_t request_id)
{
    if (!deviceCert_)
        return std::nullopt;

    // Verify the server certificate chain and the page signature.
    const auto cert = crypto::Certificate::deserialize(page.serverCert);
    busyTime_ += cryptoModel_.rsaVerify1024 * 2;
    if (!cert || cert->subject != page.domain ||
        !crypto::verifyCertificate(*cert, caKey_, now,
                                   crypto::CertRole::WebServer))
        return std::nullopt;
    if (!crypto::rsaVerify(cert->subjectKey, page.signedBody(),
                           page.signature))
        return std::nullopt;

    // The registration touch must carry a usable fingerprint: this
    // is the template that will own the binding.
    if (!capture.covered ||
        capture.quality < config_.minCaptureQuality ||
        capture.minutiae.size() < 5)
        return std::nullopt;

    // The registration capture must verify against a finger the
    // owner enrolled during device setup: the binding references
    // that enrolled multi-view template, never a one-off partial
    // capture (which would be too thin to match again later).
    const int finger = firstMatchingFinger(capture, /*strict=*/true);
    if (finger < 0)
        return std::nullopt;

    DomainBinding binding;
    binding.account = account;
    binding.userKeys = crypto::rsaGenerate(config_.rsaBits, rng_);
    busyTime_ += cryptoModel_.rsaKeygen1024;
    binding.serverKey = cert->subjectKey;
    binding.fingerIndex = finger;

    RegistrationSubmit submit;
    submit.requestId = request_id;
    submit.domain = page.domain;
    submit.account = account;
    submit.nonce = page.nonce;
    submit.deviceCert = deviceCert_->serialize();
    submit.userPublicKey = binding.userKeys.pub.serialize();
    submit.frameHash = frameHashFor(frame);
    submit.signature =
        crypto::rsaSign(deviceKeys_.priv, submit.signedBody());
    busyTime_ += cryptoModel_.rsaSign1024;

    // Persist the binding.
    core::ByteWriter w;
    w.writeString(binding.account);
    w.writeBytes(binding.userKeys.priv.serialize());
    w.writeBytes(binding.serverKey.serialize());
    w.writeU32(static_cast<std::uint32_t>(binding.fingerIndex));
    if (!store_.put("domain/" + page.domain, w.take())) {
        core::warn("FLock protected store full; binding not persisted");
        return std::nullopt;
    }
    busyTime_ += store_.writeLatency();
    bindings_[page.domain] = std::move(binding);
    if (core::obs::enabledFast())
        core::obs::audit().record(
            deviceId_, "registration-submit",
            {{"domain", page.domain},
             {"account", account},
             {"finger", std::to_string(finger)}});
    return submit;
}

bool
FlockModule::hasBinding(const std::string &domain) const
{
    return bindings_.count(domain) > 0;
}

std::optional<LoginSubmit>
FlockModule::handleLoginPage(const LoginPage &page,
                             const core::Bytes &frame,
                             const CaptureSample &capture,
                             std::uint64_t request_id, bool resume)
{
    auto it = bindings_.find(page.domain);
    if (it == bindings_.end())
        return std::nullopt;
    const DomainBinding &binding = it->second;

    busyTime_ += cryptoModel_.rsaVerify1024;
    if (!crypto::rsaVerify(binding.serverKey, page.signedBody(),
                           page.signature))
        return std::nullopt;

    // The login touch must verify against the bound finger.
    if (!capture.covered ||
        capture.quality < config_.minCaptureQuality)
        return std::nullopt;
    busyTime_ += kMatchLatency;
    if (!matchesFinger(capture, binding.fingerIndex, /*strict=*/true))
        return std::nullopt;

    // A fresh login starts a new risk epoch; a resume after a
    // network outage keeps the accumulated window so the k-of-n
    // history spans the outage.
    if (!resume)
        risk_.reset();
    risk_.record(TouchOutcome::Matched);
    if (core::obs::enabledFast()) {
        const RiskReport rr = risk_.report();
        core::obs::audit().record(
            deviceId_, resume ? "risk-epoch-resume" : "risk-epoch-new",
            {{"domain", page.domain},
             {"matched", std::to_string(rr.matched)},
             {"window", std::to_string(rr.windowTouches)}});
        lastViolated_ = risk_.violated();
    }

    Session session;
    session.sessionKey = rng_.randomBytes(32);
    session.pendingLoginNonce = page.nonce;
    session.established = false;

    LoginSubmit submit;
    submit.requestId = request_id;
    submit.domain = page.domain;
    submit.account = binding.account;
    submit.nonce = page.nonce;
    submit.encSessionKey =
        crypto::rsaEncrypt(binding.serverKey, session.sessionKey, rng_);
    busyTime_ += cryptoModel_.rsaVerify1024; // public-key op
    submit.frameHash = frameHashFor(frame);
    const RiskReport rr = risk_.report();
    submit.riskMatched = static_cast<std::uint32_t>(rr.matched);
    submit.riskWindow = static_cast<std::uint32_t>(
        std::max(rr.windowTouches, 1));
    submit.mac =
        crypto::hmacSha256(session.sessionKey, submit.macBody());

    sessions_[page.domain] = std::move(session);
    if (core::obs::enabledFast())
        core::obs::audit().record(
            deviceId_, "login-submit",
            {{"domain", page.domain},
             {"matched", std::to_string(submit.riskMatched)},
             {"window", std::to_string(submit.riskWindow)}});
    return submit;
}

bool
FlockModule::acceptContentPage(const ContentPage &page)
{
    auto it = sessions_.find(page.domain);
    if (it == sessions_.end())
        return false;
    Session &session = it->second;

    if (!crypto::hmacSha256Verify(session.sessionKey, page.macBody(),
                                  page.mac))
        return false;
    if (session.established && page.sessionId != session.sessionId)
        return false;

    session.sessionId = page.sessionId;
    session.nextNonce = page.nonce;
    session.established = true;
    return true;
}

std::optional<PageRequest>
FlockModule::makePageRequest(const std::string &domain,
                             const std::string &action,
                             const core::Bytes &frame,
                             const CaptureSample &capture,
                             std::uint64_t request_id)
{
    auto it = sessions_.find(domain);
    if (it == sessions_.end() || !it->second.established)
        return std::nullopt;
    Session &session = it->second;
    auto binding_it = bindings_.find(domain);
    if (binding_it == bindings_.end())
        return std::nullopt;

    // Opportunistic continuous authentication (Fig. 6 inside
    // Fig. 10): every touch updates the risk window.
    processTouch(capture);

    PageRequest request;
    request.requestId = request_id;
    request.domain = domain;
    request.account = binding_it->second.account;
    request.sessionId = session.sessionId;
    request.nonce = session.nextNonce;
    request.action = action;
    request.frameHash = frameHashFor(frame);
    const RiskReport rr = risk_.report();
    request.riskMatched = static_cast<std::uint32_t>(rr.matched);
    request.riskWindow =
        static_cast<std::uint32_t>(std::max(rr.windowTouches, 1));
    request.mac =
        crypto::hmacSha256(session.sessionKey, request.macBody());
    busyTime_ += cryptoModel_.shaLatency(
        static_cast<std::int64_t>(request.macBody().size()));
    return request;
}

std::optional<core::Bytes>
FlockModule::decryptPageContent(const std::string &domain,
                                const core::Bytes &encrypted) const
{
    auto it = sessions_.find(domain);
    if (it == sessions_.end() || !it->second.established)
        return std::nullopt;
    return sessionCipher(it->second.sessionKey, encrypted,
                         it->second.sessionId);
}

void
FlockModule::endSession(const std::string &domain)
{
    sessions_.erase(domain);
}

bool
FlockModule::sessionActive(const std::string &domain) const
{
    auto it = sessions_.find(domain);
    return it != sessions_.end() && it->second.established;
}

std::optional<core::Bytes>
FlockModule::exportIdentity(const crypto::RsaPublicKey &new_device_key,
                            const CaptureSample &authorization)
{
    // The user authorizes the transfer with a verified fingerprint
    // (Sec. IV-B, Identity Transfer).
    if (!verifyCapture(authorization))
        return std::nullopt;

    core::ByteWriter bundle;
    bundle.writeU32(static_cast<std::uint32_t>(fingers_.size()));
    for (const auto &views : fingers_) {
        bundle.writeU32(static_cast<std::uint32_t>(views.size()));
        for (const auto &view : views)
            bundle.writeBytes(
                fingerprint::serializeMinutiae(view.minutiae));
    }
    bundle.writeU32(static_cast<std::uint32_t>(bindings_.size()));
    for (const auto &[domain, binding] : bindings_) {
        bundle.writeString(domain);
        bundle.writeString(binding.account);
        bundle.writeBytes(binding.userKeys.priv.serialize());
        bundle.writeBytes(binding.serverKey.serialize());
        bundle.writeU32(static_cast<std::uint32_t>(binding.fingerIndex));
    }
    const core::Bytes plain = bundle.take();

    // Hybrid encryption to the new device's public key.
    const core::Bytes aes_key = rng_.randomBytes(16);
    const core::Bytes iv = rng_.randomBytes(16);
    const core::Bytes ciphertext =
        crypto::Aes128(aes_key).ctrTransform(iv, plain);

    core::ByteWriter out;
    out.writeBytes(crypto::rsaEncrypt(new_device_key, aes_key, rng_));
    out.writeBytes(iv);
    out.writeBytes(ciphertext);
    busyTime_ += cryptoModel_.aesLatency(
        static_cast<std::int64_t>(plain.size()));
    return out.take();
}

bool
FlockModule::importIdentity(const core::Bytes &bundle)
{
    core::ByteReader outer(bundle);
    const core::Bytes enc_key = outer.readBytes();
    const core::Bytes iv = outer.readBytes();
    const core::Bytes ciphertext = outer.readBytes();
    if (!outer.ok() || !outer.atEnd() || iv.size() != 16)
        return false;

    const auto aes_key = crypto::rsaDecrypt(deviceKeys_.priv, enc_key);
    if (!aes_key || aes_key->size() != 16)
        return false;
    const core::Bytes plain =
        crypto::Aes128(*aes_key).ctrTransform(iv, ciphertext);

    core::ByteReader r(plain);
    const std::uint32_t finger_count = r.readU32();
    std::vector<std::vector<fingerprint::FingerprintTemplate>> fingers;
    for (std::uint32_t f = 0; f < finger_count && r.ok(); ++f) {
        const std::uint32_t view_count = r.readU32();
        std::vector<fingerprint::FingerprintTemplate> views;
        for (std::uint32_t v = 0; v < view_count && r.ok(); ++v)
            views.emplace_back(
                fingerprint::deserializeMinutiae(r.readBytes()));
        fingers.push_back(std::move(views));
    }
    const std::uint32_t binding_count = r.readU32();
    std::map<std::string, DomainBinding> bindings;
    for (std::uint32_t b = 0; b < binding_count && r.ok(); ++b) {
        const std::string domain = r.readString();
        DomainBinding binding;
        binding.account = r.readString();
        const auto priv =
            crypto::RsaPrivateKey::deserialize(r.readBytes());
        const auto server =
            crypto::RsaPublicKey::deserialize(r.readBytes());
        binding.fingerIndex = static_cast<int>(r.readU32());
        if (!priv || !server)
            return false;
        binding.userKeys = {priv->publicKey(), *priv};
        binding.serverKey = *server;
        bindings[domain] = std::move(binding);
    }
    if (!r.ok() || !r.atEnd())
        return false;

    fingers_ = std::move(fingers);
    bindings_ = std::move(bindings);
    sessions_.clear();
    risk_.reset();
    return true;
}

void
FlockModule::factoryReset()
{
    fingers_.clear();
    bindings_.clear();
    sessions_.clear();
    risk_.reset();
    store_.wipeAll();
}

} // namespace trust::trust
