/**
 * @file
 * Fleet-scale serving: many independent device↔server channels
 * executed concurrently against shared, thread-safe WebServers.
 *
 * Each channel is a self-contained serial sub-simulation — its own
 * event queue, network and device — touching no other channel's
 * state; the only shared mutable objects are the sharded WebServers
 * (safe by design, see server.hh) and the observability singletons
 * (thread-safe). Channels are executed with core::parallelFor, so
 * the set of channels run and everything each one computes is
 * independent of the worker-thread count.
 *
 * **Deterministic audit merge.** While a channel runs, a
 * ScopedChannelObs capture redirects the executing thread's
 * obs::audit() and obs::simNow() to the channel's private buffer and
 * clock. After the run, the per-channel buffers are merged into the
 * global audit log ordered by (tick, channel, per-channel seq) — a
 * total order derived only from simulation data — so the merged log
 * is byte-identical at 1, 4 or 16 threads. The fleet golden test
 * pins this.
 */

#ifndef TRUST_TRUST_FLEET_HH
#define TRUST_TRUST_FLEET_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/obs/audit.hh"
#include "net/network.hh"
#include "trust/scenario.hh"

namespace trust::trust {

/** Fleet-wide configuration. */
struct FleetConfig
{
    std::uint64_t seed = 1;
    int devices = 8;   ///< Independent device↔server channels.
    int servers = 2;   ///< Shared web servers (round-robin binding).
    int clicks = 5;    ///< Browsing touches per channel session.
    int sensorTiles = 4;
    double tileSideMm = 7.0;
    std::size_t rsaBits = 512;
    ServerPolicy serverPolicy;
    FlockConfig flockConfig;
    net::LatencyModel latency;
};

/** What one channel's session produced. */
struct ChannelResult
{
    SessionOutcome outcome;
    std::uint64_t messages = 0;  ///< Channel network messages sent.
    std::uint64_t wireBytes = 0; ///< Channel network bytes sent.
    core::Tick simEnd = 0;       ///< Channel sim time at completion.
};

/** Aggregated fleet run outcome. */
struct FleetResult
{
    std::vector<ChannelResult> channels;
    int sessionsOk = 0;          ///< Registered AND logged in.
    std::uint64_t pagesServed = 0;
    std::uint64_t dispatches = 0; ///< Server requests handled.
};

/**
 * Per-dispatch instrumentation hooks, called on the worker thread
 * executing the channel immediately around WebServer::handle().
 * Benches install wall-clock timers here (the fleet itself never
 * reads a wall clock). Must be thread-safe; invoked concurrently
 * from different channels.
 */
struct FleetHooks
{
    std::function<void(int channel)> beforeDispatch;
    std::function<void(int channel)> afterDispatch;
};

/**
 * The running fleet. Construction provisions every channel
 * (screen placement, FLock keys, owner enrollment — parallelised;
 * certificate issue — serialized in channel order, so the CA's
 * serial counter assignment is deterministic).
 */
class Fleet
{
  public:
    explicit Fleet(const FleetConfig &config, FleetHooks hooks = {});
    ~Fleet();

    Fleet(const Fleet &) = delete;
    Fleet &operator=(const Fleet &) = delete;

    /**
     * Run every channel's browsing session (registration → login →
     * clicks), concurrently across the global thread pool, then
     * merge the per-channel audit buffers into the global log in
     * (tick, channel, seq) order. Call once.
     */
    FleetResult run();

    WebServer &server(int index) { return *servers_[static_cast<std::size_t>(index)]; }
    int serverCount() const { return static_cast<int>(servers_.size()); }

  private:
    struct Channel;

    void runChannel(Channel &channel);
    void mergeAuditBuffers();

    FleetConfig config_;
    FleetHooks hooks_;
    crypto::Csprng caRng_;
    std::unique_ptr<crypto::CertificateAuthority> ca_;
    std::vector<std::unique_ptr<WebServer>> servers_;
    std::vector<std::unique_ptr<Channel>> channels_;
};

} // namespace trust::trust

#endif // TRUST_TRUST_FLEET_HH
