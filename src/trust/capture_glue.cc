#include "trust/capture_glue.hh"

#include "fingerprint/capture.hh"

namespace trust::trust {

TouchCapture
captureTouch(hw::BiometricTouchscreen &screen,
             const touch::TouchEvent &event,
             const fingerprint::MasterFinger *finger, core::Rng &rng,
             double window_mm)
{
    TouchCapture out;
    out.hardware = screen.captureAtTouch(event.position, window_mm);
    out.sample.covered = out.hardware.covered;
    if (!out.hardware.covered)
        return out;

    if (!finger) {
        // A contact with no ridge pattern: the scan completes but
        // quality assessment finds nothing usable.
        out.sample.quality = 0.0;
        return out;
    }

    // Minimal-touch-time countermeasure (Sec. IV-A): the finger must
    // stay on the tile for the whole scan. Ultra-quick taps leave an
    // incomplete scan that the quality gate discards.
    if (event.duration != 0 &&
        event.duration < out.hardware.timing.total()) {
        out.sample.quality = 0.0;
        return out;
    }

    // The scanned cell window defines the capture footprint; touch
    // speed degrades the physical conditions.
    auto conditions = fingerprint::sampleTouchConditions(
        out.hardware.window.rows(), out.hardware.window.cols(),
        event.speed, rng);
    const auto capture =
        fingerprint::captureTemplateFast(*finger, conditions, rng);
    out.sample.minutiae = capture.minutiae;
    out.sample.quality = capture.quality;

    // Sensor hardware faults reported by the tile: a noise burst or
    // a mostly-faulty window destroys the image outright; partial
    // faults scale quality by the surviving cell fraction. Either
    // way the sample is flagged so FLock can classify a resulting
    // gate failure as SensorDegraded (no evidence) rather than
    // LowQuality (window evidence).
    const double faulty = out.hardware.timing.faultyFraction();
    if (out.hardware.timing.noiseBurst || faulty > 0.5) {
        out.sample.quality = 0.0;
        out.sample.hardwareDegraded = true;
    } else if (faulty > 0.0) {
        out.sample.quality *= 1.0 - faulty;
        out.sample.hardwareDegraded = true;
    }
    return out;
}

} // namespace trust::trust
