#include "trust/capture_glue.hh"

#include "fingerprint/capture.hh"

namespace trust::trust {

TouchCapture
captureTouch(hw::BiometricTouchscreen &screen,
             const touch::TouchEvent &event,
             const fingerprint::MasterFinger *finger, core::Rng &rng,
             double window_mm)
{
    TouchCapture out;
    out.hardware = screen.captureAtTouch(event.position, window_mm);
    out.sample.covered = out.hardware.covered;
    if (!out.hardware.covered)
        return out;

    if (!finger) {
        // A contact with no ridge pattern: the scan completes but
        // quality assessment finds nothing usable.
        out.sample.quality = 0.0;
        return out;
    }

    // Minimal-touch-time countermeasure (Sec. IV-A): the finger must
    // stay on the tile for the whole scan. Ultra-quick taps leave an
    // incomplete scan that the quality gate discards.
    if (event.duration != 0 &&
        event.duration < out.hardware.timing.total()) {
        out.sample.quality = 0.0;
        return out;
    }

    // The scanned cell window defines the capture footprint; touch
    // speed degrades the physical conditions.
    auto conditions = fingerprint::sampleTouchConditions(
        out.hardware.window.rows(), out.hardware.window.cols(),
        event.speed, rng);
    const auto capture =
        fingerprint::captureTemplateFast(*finger, conditions, rng);
    out.sample.minutiae = capture.minutiae;
    out.sample.quality = capture.quality;
    return out;
}

} // namespace trust::trust
