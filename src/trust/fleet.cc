#include "trust/fleet.hh"

#include <algorithm>
#include <optional>
#include <utility>

#include "core/logging.hh"
#include "core/obs/obs.hh"
#include "core/parallel.hh"
#include "core/rng.hh"
#include "fingerprint/synthesis.hh"
#include "touch/behavior.hh"

namespace trust::trust {

namespace {

/**
 * Per-channel seed base: a pure function of (fleet seed, channel
 * index), never of construction or execution order, so channel i is
 * the same simulation no matter how many threads build or run it.
 */
std::uint64_t
channelSeedBase(std::uint64_t fleet_seed, int index)
{
    return fleet_seed * 0x9E3779B97F4A7C15ull +
           (static_cast<std::uint64_t>(index) + 1) * 0x100000001B3ull;
}

} // namespace

struct Fleet::Channel
{
    int index = 0;
    std::uint64_t seedBase = 0;
    std::string name;
    std::string account;
    core::EventQueue queue;
    net::Network network;
    // Provisioning artifacts staged across the build phases (the
    // screen and FLock module are consumed by the device ctor).
    std::optional<touch::UserBehavior> behavior;
    std::optional<fingerprint::MasterFinger> finger;
    std::optional<hw::BiometricTouchscreen> screen;
    std::optional<FlockModule> flock;
    std::unique_ptr<MobileDevice> device;
    WebServer *server = nullptr;
    core::obs::AuditLog buffer; ///< This channel's audit capture.
    ChannelResult result;
    std::uint64_t dispatches = 0;

    Channel(int idx, const FleetConfig &config)
        : index(idx), seedBase(channelSeedBase(config.seed, idx)),
          name("fleet-phone-" + std::to_string(idx)),
          account("user" + std::to_string(idx)),
          network(queue, config.latency)
    {
    }
};

Fleet::Fleet(const FleetConfig &config, FleetHooks hooks)
    : config_(config), hooks_(std::move(hooks)),
      caRng_(config.seed ^ 0xF1EE7CA0ull),
      ca_(std::make_unique<crypto::CertificateAuthority>(
          "TrustRootCA", config.rsaBits, caRng_))
{
    // Shared servers (serial: key generation and certificate issue
    // draw from the CA's RNG and serial counter in a fixed order).
    const int n_servers = std::max(config_.servers, 1);
    servers_.reserve(static_cast<std::size_t>(n_servers));
    for (int s = 0; s < n_servers; ++s) {
        servers_.push_back(std::make_unique<WebServer>(
            "www.fleet" + std::to_string(s) + ".com", *ca_,
            config_.seed * 2654435761ull +
                static_cast<std::uint64_t>(s) + 1,
            config_.rsaBits, config_.serverPolicy,
            config_.flockConfig.display));
    }

    const int n = std::max(config_.devices, 0);
    channels_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        channels_.push_back(std::make_unique<Channel>(i, config_));

    // Provisioning that touches only channel-private state runs in
    // parallel: behaviour synthesis, sensor placement, FLock key
    // generation. Observability is captured per channel so any
    // records land in the channel's buffer, not the global log.
    core::parallelFor(0, n, 1, [&](int begin, int end) {
        for (int i = begin; i < end; ++i) {
            Channel &ch = *channels_[static_cast<std::size_t>(i)];
            core::obs::ScopedChannelObs capture(&ch.queue,
                                                &ch.buffer);
            const std::uint64_t uid =
                static_cast<std::uint64_t>(ch.index) + 1;
            ch.behavior.emplace(touch::UserBehavior::forUser(
                uid, {touch::homeScreenLayout(),
                      touch::keyboardLayout(),
                      touch::browserLayout()}));
            core::Rng finger_rng(ch.seedBase + 1);
            ch.finger.emplace(
                fingerprint::synthesizeFinger(uid, finger_rng));
            ch.screen.emplace(makeOptimizedScreen(
                *ch.behavior, config_.sensorTiles,
                config_.tileSideMm, ch.seedBase + 2));
            FlockConfig flock_config = config_.flockConfig;
            flock_config.rsaBits = config_.rsaBits;
            ch.flock.emplace(ch.name + "-flock", ca_->rootKey(),
                             ch.seedBase + 3, flock_config);
        }
    });

    // Certificate issue is the one provisioning step with shared
    // mutable state (the CA's serial counter and RNG): strictly in
    // channel order so every certificate is deterministic. Device
    // assembly and network wiring ride along (both cheap).
    for (int i = 0; i < n; ++i) {
        Channel &ch = *channels_[static_cast<std::size_t>(i)];
        ch.flock->installDeviceCertificate(
            ca_->issue(ch.name + "-flock",
                       crypto::CertRole::FlockDevice,
                       ch.flock->devicePublicKey()));
        ch.device = std::make_unique<MobileDevice>(
            ch.name, std::move(*ch.screen), std::move(*ch.flock),
            ch.seedBase + 4);
        ch.screen.reset();
        ch.flock.reset();
        ch.device->attachToNetwork(ch.network);
        ch.server =
            servers_[static_cast<std::size_t>(i) %
                     servers_.size()]
                .get();
        WebServer *srv = ch.server;
        Channel *chp = &ch;
        ch.network.attach(
            srv->domain(), [this, chp, srv](const net::Message &m) {
                if (hooks_.beforeDispatch)
                    hooks_.beforeDispatch(chp->index);
                const core::Bytes reply = srv->handle(
                    m.payload, m.from, chp->queue.now());
                if (hooks_.afterDispatch)
                    hooks_.afterDispatch(chp->index);
                ++chp->dispatches;
                chp->network.send(srv->domain(), m.from, reply);
            });
    }

    // Owner enrollment is channel-private again — and the heaviest
    // provisioning step (full fingerprint pipeline per view).
    core::parallelFor(0, n, 1, [&](int begin, int end) {
        for (int i = begin; i < end; ++i) {
            Channel &ch = *channels_[static_cast<std::size_t>(i)];
            core::obs::ScopedChannelObs capture(&ch.queue,
                                                &ch.buffer);
            if (!ch.device->enrollOwner(*ch.finger))
                core::warn("fleet: owner enrollment produced no "
                           "usable view");
        }
    });
}

Fleet::~Fleet() = default;

void
Fleet::runChannel(Channel &channel)
{
    // While this capture is alive, the executing thread's
    // obs::audit()/simNow() resolve to this channel's buffer and
    // clock — concurrently running channels never interleave
    // records in the global log.
    core::obs::ScopedChannelObs capture(&channel.queue,
                                        &channel.buffer);
    core::Rng rng(channel.seedBase + 5);
    channel.result.outcome = runBrowsingSession(
        channel.queue, *channel.device, *channel.server,
        *channel.behavior, *channel.finger, rng, config_.clicks,
        channel.account);
    channel.result.messages = channel.network.messagesSent();
    channel.result.wireBytes = channel.network.bytesSent();
    channel.result.simEnd = channel.queue.now();
}

void
Fleet::mergeAuditBuffers()
{
    // Total order from simulation data only: records sort by their
    // own sim tick, ties broken by channel index then the channel-
    // local sequence number. (channel, seq) is unique, so the order
    // — and with it the merged log's bytes — is independent of the
    // worker-thread count.
    std::vector<std::pair<int, core::obs::AuditRecord>> tagged;
    for (const auto &channel : channels_) {
        for (auto &record : channel->buffer.snapshot())
            tagged.emplace_back(channel->index, std::move(record));
        channel->buffer.clear();
    }
    std::sort(tagged.begin(), tagged.end(),
              [](const auto &a, const auto &b) {
                  if (a.second.tick != b.second.tick)
                      return a.second.tick < b.second.tick;
                  if (a.first != b.first)
                      return a.first < b.first;
                  return a.second.seq < b.second.seq;
              });
    for (auto &[channel, record] : tagged)
        core::obs::audit().absorb(std::move(record));
}

FleetResult
Fleet::run()
{
    const int n = static_cast<int>(channels_.size());
    core::parallelFor(0, n, 1, [&](int begin, int end) {
        for (int i = begin; i < end; ++i)
            runChannel(*channels_[static_cast<std::size_t>(i)]);
    });
    mergeAuditBuffers();

    FleetResult out;
    out.channels.reserve(channels_.size());
    for (const auto &channel : channels_) {
        out.channels.push_back(channel->result);
        if (channel->result.outcome.registered &&
            channel->result.outcome.loggedIn)
            ++out.sessionsOk;
        out.pagesServed += static_cast<std::uint64_t>(
            std::max(channel->result.outcome.pagesReceived, 0));
        out.dispatches += channel->dispatches;
    }
    return out;
}

} // namespace trust::trust
