#include "trust/identity_risk.hh"

#include "core/logging.hh"

namespace trust::trust {

const char *
toString(TouchOutcome outcome)
{
    switch (outcome) {
      case TouchOutcome::NotCovered: return "not-covered";
      case TouchOutcome::LowQuality: return "low-quality";
      case TouchOutcome::Matched: return "matched";
      case TouchOutcome::Rejected: return "rejected";
      case TouchOutcome::SensorDegraded: return "sensor-degraded";
    }
    return "unknown";
}

IdentityRisk::IdentityRisk(int window_size, int required_matches)
    : windowSize_(window_size), requiredMatches_(required_matches)
{
    TRUST_ASSERT(window_size > 0, "IdentityRisk: window must be > 0");
    TRUST_ASSERT(required_matches > 0 && required_matches <= window_size,
                 "IdentityRisk: need 0 < k <= n");
}

void
IdentityRisk::record(TouchOutcome outcome)
{
    ++total_;
    if (outcome == TouchOutcome::NotCovered) {
        ++notCovered_;
        return;
    }
    if (outcome == TouchOutcome::SensorDegraded) {
        ++sensorDegraded_;
        return;
    }
    window_.push_back(outcome);
    if (static_cast<int>(window_.size()) > windowSize_)
        window_.pop_front();
}

void
IdentityRisk::reset()
{
    window_.clear();
}

RiskReport
IdentityRisk::report() const
{
    RiskReport r;
    r.windowTouches = static_cast<int>(window_.size());
    r.notCovered = notCovered_;
    r.sensorDegraded = sensorDegraded_;
    for (TouchOutcome o : window_) {
        switch (o) {
          case TouchOutcome::Matched:
            ++r.matched;
            break;
          case TouchOutcome::Rejected:
            ++r.rejected;
            break;
          case TouchOutcome::LowQuality:
            ++r.lowQuality;
            break;
          case TouchOutcome::NotCovered:
          case TouchOutcome::SensorDegraded:
            break; // never stored in the window
        }
    }
    // Risk: 1 minus the verified fraction of the window, weighted so
    // explicit rejections hurt more than mere lack of evidence.
    if (r.windowTouches > 0) {
        const double verified =
            static_cast<double>(r.matched) / r.windowTouches;
        const double reject_penalty =
            static_cast<double>(r.rejected) / r.windowTouches;
        double risk = (1.0 - verified) * 0.5 + reject_penalty * 0.5;
        if (risk < 0.0)
            risk = 0.0;
        if (risk > 1.0)
            risk = 1.0;
        r.risk = risk;
    }
    return r;
}

bool
IdentityRisk::violated() const
{
    if (static_cast<int>(window_.size()) < windowSize_)
        return false;
    return report().matched < requiredMatches_;
}

bool
IdentityRisk::hardFailure(int max_rejects) const
{
    const RiskReport r = report();
    return r.rejected >= max_rejects && r.rejected > 2 * r.matched;
}

} // namespace trust::trust
