/**
 * @file
 * The mobile device of Figs. 8-10: biometric touchscreen hardware,
 * the trusted FLock module, and the UNTRUSTED host SoC running the
 * browser. Per the threat model (Sec. IV-B assumption i) the host
 * may be controlled by malware; the MalwareProfile lets experiments
 * switch on frame tampering and request forgery and observe that
 * the server rejects or audits them.
 */

#ifndef TRUST_TRUST_DEVICE_HH
#define TRUST_TRUST_DEVICE_HH

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "core/stats.hh"
#include "net/network.hh"
#include "trust/capture_glue.hh"
#include "trust/frames.hh"

namespace trust::trust {

/** Device-side response policy (the Fig. 6 pre-defined responses). */
struct DevicePolicy
{
    /**
     * End every remote session when the risk window hard-fails
     * (the paper's "logging out automatically" response). Off by
     * default so experiments can observe the server-side policy in
     * isolation.
     */
    bool autoLogoutOnHardFailure = false;
};

/** Host-side malware capabilities. */
struct MalwareProfile
{
    /** Tamper with displayed frames (phishing overlay). */
    bool tamperFrames = false;

    /** Forge page requests without going through FLock. */
    bool forgeRequests = false;
};

/** A mobile device with an integrated FLock module. */
class MobileDevice
{
  public:
    /**
     * @param name   network endpoint name of the device.
     * @param screen biometric touchscreen hardware.
     * @param flock  the trusted module (moved in).
     * @param seed   host-side RNG seed (view choice, malware).
     */
    MobileDevice(std::string name, hw::BiometricTouchscreen screen,
                 FlockModule flock, std::uint64_t seed);

    const std::string &name() const { return name_; }
    FlockModule &flock() { return flock_; }
    const FlockModule &flock() const { return flock_; }
    hw::BiometricTouchscreen &screen() { return screen_; }

    /** Install the host-compromise profile. */
    void setMalware(const MalwareProfile &profile)
    {
        malware_ = profile;
    }

    /** Install the local response policy. */
    void setPolicy(const DevicePolicy &policy) { policy_ = policy; }

    /** Register the device endpoint on the network. */
    void attachToNetwork(net::Network &network);

    /**
     * Enroll the owner's finger from repeated setup touches on a
     * sensor tile (multi-view enrollment). Returns true when at
     * least one good view enrolled.
     */
    bool enrollOwner(const fingerprint::MasterFinger &finger,
                     int capture_attempts = 6);

    // --- Asynchronous protocol operations ------------------------------

    /** Fig. 9 step 1: ask @p domain for its registration page. */
    void startRegistration(const std::string &domain,
                           const std::string &account);

    /** Fig. 10 step 1: ask @p domain for its login page. */
    void startLogin(const std::string &domain);

    /**
     * One user touch. Completes any pending protocol step that was
     * waiting for a touch (registration / login confirmation) or,
     * inside a live session, issues the next authenticated page
     * request with the touch's opportunistic capture.
     */
    void onTouch(const touch::TouchEvent &event,
                 const fingerprint::MasterFinger *finger);

    // --- State inspection -----------------------------------------------

    bool registrationComplete(const std::string &domain) const;
    bool sessionActive(const std::string &domain) const;

    /** Pages successfully received and decrypted in sessions. */
    std::uint64_t pagesReceived() const
    {
        return counters_.get("content-page-accepted");
    }

    const core::CounterSet &counters() const { return counters_; }

  private:
    enum class Await
    {
        Nothing,
        RegistrationPageMsg,
        RegistrationTouch,
        RegistrationResultMsg,
        LoginPageMsg,
        LoginTouch,
        LoginReplyMsg,
        PageReplyMsg,
    };

    struct PendingOp
    {
        Await await = Await::Nothing;
        std::string domain;
        std::string account;
        std::optional<RegistrationPage> regPage;
        std::optional<LoginPage> loginPage;
    };

    /** Render (and possibly tamper) the frame the user looks at. */
    core::Bytes displayFrame(const core::Bytes &page_content);

    void handleMessage(const net::Message &message);
    void completeRegistrationTouch(const touch::TouchEvent &event,
                                   const fingerprint::MasterFinger *f);
    void completeLoginTouch(const touch::TouchEvent &event,
                            const fingerprint::MasterFinger *f);
    void maybeForgeRequest();
    void applyRiskPolicy();

    std::string name_;
    hw::BiometricTouchscreen screen_;
    FlockModule flock_;
    core::Rng hostRng_;
    MalwareProfile malware_;
    DevicePolicy policy_;
    net::Network *network_ = nullptr;

    PendingOp pending_;
    std::map<std::string, bool> registered_;
    std::map<std::string, std::string> accounts_; ///< domain -> account.
    /** Per-domain current page plaintext (host browser state). */
    std::map<std::string, core::Bytes> currentPage_;
    /** Frame shown for the current page (repeater sees this). */
    std::map<std::string, core::Bytes> currentFrame_;
    std::map<std::string, std::uint64_t> sessionIds_;
    core::CounterSet counters_;
};

} // namespace trust::trust

#endif // TRUST_TRUST_DEVICE_HH
