/**
 * @file
 * The mobile device of Figs. 8-10: biometric touchscreen hardware,
 * the trusted FLock module, and the UNTRUSTED host SoC running the
 * browser. Per the threat model (Sec. IV-B assumption i) the host
 * may be controlled by malware; the MalwareProfile lets experiments
 * switch on frame tampering and request forgery and observe that
 * the server rejects or audits them.
 */

#ifndef TRUST_TRUST_DEVICE_HH
#define TRUST_TRUST_DEVICE_HH

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "core/sim_clock.hh"
#include "core/stats.hh"
#include "net/network.hh"
#include "trust/capture_glue.hh"
#include "trust/frames.hh"

namespace trust::trust {

/** Device-side response policy (the Fig. 6 pre-defined responses). */
struct DevicePolicy
{
    /**
     * End every remote session when the risk window hard-fails
     * (the paper's "logging out automatically" response). Off by
     * default so experiments can observe the server-side policy in
     * isolation.
     */
    bool autoLogoutOnHardFailure = false;
};

/** Host-side malware capabilities. */
struct MalwareProfile
{
    /** Tamper with displayed frames (phishing overlay). */
    bool tamperFrames = false;

    /** Forge page requests without going through FLock. */
    bool forgeRequests = false;
};

/**
 * Retransmission policy for network exchanges: every request is
 * resent with exponential backoff and jitter until a reply with the
 * matching id arrives or the attempt budget is spent. Defaults span
 * 0.25 s..4 s, so the cumulative schedule (~0.25+0.5+1+2+4 s) rides
 * out a multi-second partition within the 8-attempt budget.
 */
struct RetryPolicy
{
    core::Tick initialTimeout = core::milliseconds(250);
    double backoffFactor = 2.0;
    core::Tick maxTimeout = core::milliseconds(4000);
    /** Uniform +/- fraction applied to each timeout (desyncs flows). */
    double jitterFraction = 0.2;
    int maxAttempts = 8;
};

/** Typed outcome of the last finished network exchange. */
enum class OpError
{
    None = 0,       ///< Completed (or nothing attempted yet).
    RetryExhausted, ///< No matching reply within maxAttempts sends.
    ServerError,    ///< Server answered with a typed ErrorReply.
    BadReply,       ///< Reply failed authenticity/decode checks.
};

/** A mobile device with an integrated FLock module. */
class MobileDevice
{
  public:
    /**
     * @param name   network endpoint name of the device.
     * @param screen biometric touchscreen hardware.
     * @param flock  the trusted module (moved in).
     * @param seed   host-side RNG seed (view choice, malware).
     */
    MobileDevice(std::string name, hw::BiometricTouchscreen screen,
                 FlockModule flock, std::uint64_t seed);

    const std::string &name() const { return name_; }
    FlockModule &flock() { return flock_; }
    const FlockModule &flock() const { return flock_; }
    hw::BiometricTouchscreen &screen() { return screen_; }

    /** Install the host-compromise profile. */
    void setMalware(const MalwareProfile &profile)
    {
        malware_ = profile;
    }

    /** Install the local response policy. */
    void setPolicy(const DevicePolicy &policy) { policy_ = policy; }

    /** Install the retransmission policy. */
    void setRetryPolicy(const RetryPolicy &policy)
    {
        retryPolicy_ = policy;
    }
    const RetryPolicy &retryPolicy() const { return retryPolicy_; }

    /** Outcome of the most recently finished exchange. */
    OpError lastError() const { return lastError_; }

    /** Register the device endpoint on the network. */
    void attachToNetwork(net::Network &network);

    /**
     * Enroll the owner's finger from repeated setup touches on a
     * sensor tile (multi-view enrollment). Returns true when at
     * least one good view enrolled.
     */
    bool enrollOwner(const fingerprint::MasterFinger &finger,
                     int capture_attempts = 6);

    // --- Asynchronous protocol operations ------------------------------

    /** Fig. 9 step 1: ask @p domain for its registration page. */
    void startRegistration(const std::string &domain,
                           const std::string &account);

    /** Fig. 10 step 1: ask @p domain for its login page. */
    void startLogin(const std::string &domain);

    /**
     * True when a live session's exchange exhausted its retries (the
     * outage outlasted the backoff schedule) and the session must be
     * re-established before further page requests.
     */
    bool sessionNeedsResume(const std::string &domain) const;

    /**
     * Re-handshake after an outage: runs the Fig. 10 login exchange
     * again but flags it as a resumption, so FLock keeps the
     * accumulated k-of-n risk window instead of starting a fresh
     * epoch.
     */
    void resumeSession(const std::string &domain);

    /**
     * One user touch. Completes any pending protocol step that was
     * waiting for a touch (registration / login confirmation) or,
     * inside a live session, issues the next authenticated page
     * request with the touch's opportunistic capture.
     */
    void onTouch(const touch::TouchEvent &event,
                 const fingerprint::MasterFinger *finger);

    // --- State inspection -----------------------------------------------

    bool registrationComplete(const std::string &domain) const;
    bool sessionActive(const std::string &domain) const;

    /** Pages successfully received and decrypted in sessions. */
    std::uint64_t pagesReceived() const
    {
        return counters_.get("content-page-accepted");
    }

    const core::CounterSet &counters() const { return counters_; }

  private:
    enum class Await
    {
        Nothing,
        RegistrationPageMsg,
        RegistrationTouch,
        RegistrationResultMsg,
        LoginPageMsg,
        LoginTouch,
        LoginReplyMsg,
        PageReplyMsg,
    };

    struct PendingOp
    {
        Await await = Await::Nothing;
        std::string domain;
        std::string account;
        std::optional<RegistrationPage> regPage;
        std::optional<LoginPage> loginPage;
        /**
         * Retransmission state of the in-flight exchange: opId keys
         * the armed timeout callbacks (a reset invalidates them),
         * requestId is the wire id replies must echo, request holds
         * the exact bytes to resend.
         */
        std::uint64_t opId = 0;
        std::uint64_t requestId = 0;
        core::Bytes request;
        int attempts = 0;
        core::Tick nextTimeout = 0;
        bool resume = false; ///< Login runs as a session resumption.
    };

    /** Render (and possibly tamper) the frame the user looks at. */
    core::Bytes displayFrame(const core::Bytes &page_content);

    void handleMessage(const net::Message &message);
    void completeRegistrationTouch(const touch::TouchEvent &event,
                                   const fingerprint::MasterFinger *f);
    void completeLoginTouch(const touch::TouchEvent &event,
                            const fingerprint::MasterFinger *f);
    void maybeForgeRequest();
    void applyRiskPolicy();

    /** True when @p await blocks on a network reply. */
    static bool awaitingNetwork(Await await);

    /** Allocate the next wire request id (device-monotonic). */
    std::uint64_t nextRequestId() { return ++lastRequestId_; }

    /**
     * Send @p request as a fresh retransmittable exchange: record
     * it in pending_, transmit, and arm the first timeout.
     */
    void beginExchange(std::uint64_t request_id,
                       core::Bytes request);

    /** Arm (or re-arm) the retransmission timer for pending_. */
    void armRetryTimer();

    /** Timeout fired for exchange @p op_id (may be stale). */
    void onOpTimeout(std::uint64_t op_id);

    /**
     * Close the async trace span / audit trail of the in-flight
     * exchange with the given result tag (obs-gated no-op).
     */
    void noteExchangeEnd(const char *result);

    void startLoginInternal(const std::string &domain, bool resume);

    std::string name_;
    hw::BiometricTouchscreen screen_;
    FlockModule flock_;
    core::Rng hostRng_;
    MalwareProfile malware_;
    DevicePolicy policy_;
    net::Network *network_ = nullptr;

    PendingOp pending_;
    std::map<std::string, bool> registered_;
    std::map<std::string, std::string> accounts_; ///< domain -> account.
    /** Per-domain current page plaintext (host browser state). */
    std::map<std::string, core::Bytes> currentPage_;
    /** Frame shown for the current page (repeater sees this). */
    std::map<std::string, core::Bytes> currentFrame_;
    std::map<std::string, std::uint64_t> sessionIds_;
    RetryPolicy retryPolicy_;
    OpError lastError_ = OpError::None;
    std::uint64_t lastRequestId_ = 0;
    std::uint64_t lastOpId_ = 0;
    /** Domains whose session lost an exchange to retry exhaustion. */
    std::map<std::string, bool> needsResume_;
    core::CounterSet counters_;
};

} // namespace trust::trust

#endif // TRUST_TRUST_DEVICE_HH
