/**
 * @file
 * Deterministic pseudo-rendering of hyper-text pages into display
 * frames, shared by the device (display repeater input) and the
 * server (frame-hash audit).
 *
 * The paper observes that the displayed view of a page varies with
 * user zoom/scroll but "can only belong to a finite set of all the
 * possible views of the original page", so a server can match a
 * logged frame hash against the hashes of that finite set. The
 * renderer below is a stand-in for a real layout engine: it expands
 * page bytes into a frame buffer as a deterministic function of
 * (content, view), which preserves exactly the property the audit
 * relies on — same content + same view => same frame; any malware
 * edit to content or frame => different hash.
 */

#ifndef TRUST_TRUST_FRAMES_HH
#define TRUST_TRUST_FRAMES_HH

#include <vector>

#include "core/bytes.hh"
#include "hw/flock_hw.hh"

namespace trust::trust {

/** A display view of a page (zoom + scroll). */
struct ViewTransform
{
    int zoomPercent = 100; ///< 100, 150, 200.
    int scrollStep = 0;    ///< Scroll position in half-screen steps.

    bool
    operator==(const ViewTransform &o) const
    {
        return zoomPercent == o.zoomPercent && scrollStep == o.scrollStep;
    }
};

/** The finite set of views the audit enumerates. */
std::vector<ViewTransform> standardViews();

/** Render page content into a frame buffer for a view. */
core::Bytes renderFrame(const core::Bytes &page_content,
                        const ViewTransform &view,
                        const hw::DisplaySpec &display);

/**
 * Hashes of all standard views of a page: the expected set a server
 * checks logged frame hashes against during offline audit.
 */
std::vector<core::Bytes> expectedFrameHashes(
    const core::Bytes &page_content, const hw::DisplaySpec &display,
    const hw::FrameHashEngine &engine);

} // namespace trust::trust

#endif // TRUST_TRUST_FRAMES_HH
