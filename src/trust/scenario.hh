/**
 * @file
 * Ecosystem wiring (Fig. 8): one CA, any number of TRUST web
 * servers and FLock devices joined by the simulated network.
 * Provides the canonical construction path used by the examples,
 * tests and benches: touch-behaviour-driven sensor placement,
 * device provisioning (keys + CA certificate + owner enrollment)
 * and ready-made end-to-end session drivers.
 */

#ifndef TRUST_TRUST_SCENARIO_HH
#define TRUST_TRUST_SCENARIO_HH

#include <memory>
#include <vector>

#include "net/network.hh"
#include "placement/placement.hh"
#include "touch/session.hh"
#include "trust/device.hh"
#include "trust/server.hh"

namespace trust::trust {

/** Ecosystem-wide configuration. */
struct EcosystemConfig
{
    std::uint64_t seed = 1;
    int sensorTiles = 4;       ///< Tiles per device screen.
    double tileSideMm = 7.0;   ///< Tile side (mm).
    std::size_t rsaBits = 512; ///< Key size everywhere (sim speed).
    ServerPolicy serverPolicy;
    FlockConfig flockConfig;
    net::LatencyModel latency;
};

/** The running ecosystem. Non-copyable (owns the event queue). */
class Ecosystem
{
  public:
    explicit Ecosystem(const EcosystemConfig &config);
    ~Ecosystem();

    Ecosystem(const Ecosystem &) = delete;
    Ecosystem &operator=(const Ecosystem &) = delete;

    core::EventQueue &queue() { return queue_; }
    net::Network &network() { return network_; }
    crypto::CertificateAuthority &ca() { return *ca_; }
    const EcosystemConfig &config() const { return config_; }

    /** Spin up a web server for @p domain and attach it. */
    WebServer &addServer(const std::string &domain);

    /**
     * Build a device whose sensor placement is optimized for the
     * given user behaviour, provision its FLock module (device key
     * certificate), enroll the owner finger and attach it.
     */
    MobileDevice &addDevice(const std::string &name,
                            const touch::UserBehavior &behavior,
                            const fingerprint::MasterFinger &owner);

    /** Deliver everything currently in flight. */
    void settle() { queue_.run(); }

    std::vector<std::unique_ptr<WebServer>> &servers()
    {
        return servers_;
    }
    std::vector<std::unique_ptr<MobileDevice>> &devices()
    {
        return devices_;
    }

  private:
    EcosystemConfig config_;
    core::EventQueue queue_;
    net::Network network_;
    crypto::Csprng caRng_;
    std::unique_ptr<crypto::CertificateAuthority> ca_;
    std::vector<std::unique_ptr<WebServer>> servers_;
    std::vector<std::unique_ptr<MobileDevice>> devices_;
    std::uint64_t nextSeed_;
};

/**
 * Build a biometric touchscreen whose tiles are placed by the
 * greedy optimizer against the behaviour's touch density.
 */
hw::BiometricTouchscreen
makeOptimizedScreen(const touch::UserBehavior &behavior, int tiles,
                    double tile_side_mm, std::uint64_t seed);

/** Outcome of a scripted end-to-end browsing session. */
struct SessionOutcome
{
    bool registered = false;
    bool loggedIn = false;
    int pagesReceived = 0;
    int requestsRejected = 0;
};

/**
 * Drive one device through registration, login and @p clicks
 * natural browsing touches against @p server. The critical
 * registration/login buttons are displayed over the device's first
 * sensor tile, per the paper's critical-button countermeasure.
 *
 * @param finger physical finger doing the touching (the enrolled
 *               owner for genuine runs; another finger to play an
 *               impostor).
 */
SessionOutcome runBrowsingSession(Ecosystem &ecosystem,
                                  MobileDevice &device,
                                  WebServer &server,
                                  const touch::UserBehavior &behavior,
                                  const fingerprint::MasterFinger &finger,
                                  core::Rng &rng, int clicks,
                                  const std::string &account);

/**
 * Same driver on a bare event queue: the device and server must
 * already be attached to a network pumped by @p queue. This is the
 * form the fleet runner uses — each independent channel owns its own
 * queue and runs this concurrently with the others.
 */
SessionOutcome runBrowsingSession(core::EventQueue &queue,
                                  MobileDevice &device,
                                  WebServer &server,
                                  const touch::UserBehavior &behavior,
                                  const fingerprint::MasterFinger &finger,
                                  core::Rng &rng, int clicks,
                                  const std::string &account);

} // namespace trust::trust

#endif // TRUST_TRUST_SCENARIO_HH
