#include "trust/frames.hh"

#include "core/rng.hh"

namespace trust::trust {

std::vector<ViewTransform>
standardViews()
{
    std::vector<ViewTransform> views;
    for (int zoom : {100, 150, 200})
        for (int scroll = 0; scroll < 4; ++scroll)
            views.push_back({zoom, scroll});
    return views;
}

core::Bytes
renderFrame(const core::Bytes &page_content, const ViewTransform &view,
            const hw::DisplaySpec &display)
{
    const std::size_t frame_bytes =
        static_cast<std::size_t>(display.frameBytes());
    core::Bytes frame(frame_bytes);
    if (page_content.empty())
        return frame;

    // Deterministic expansion: a SplitMix64 stream seeded by the view
    // parameters indexes into the content, emulating layout: zoom
    // changes glyph scaling (stride), scroll shifts the window.
    std::uint64_t seed = 0x9d2c5680u;
    seed = seed * 31 + static_cast<std::uint64_t>(view.zoomPercent);
    seed = seed * 31 + static_cast<std::uint64_t>(view.scrollStep);

    const std::size_t n = page_content.size();
    const std::size_t stride =
        1 + static_cast<std::size_t>(view.zoomPercent) / 100;
    std::size_t pos =
        (static_cast<std::size_t>(view.scrollStep) * n / 4) % n;

    std::uint64_t mix_state = seed;
    std::uint64_t mix = core::splitMix64(mix_state);
    int mix_left = 8;
    for (std::size_t i = 0; i < frame_bytes; ++i) {
        if (mix_left == 0) {
            mix = core::splitMix64(mix_state);
            mix_left = 8;
        }
        frame[i] = static_cast<std::uint8_t>(
            page_content[pos] ^ static_cast<std::uint8_t>(mix));
        mix >>= 8;
        --mix_left;
        pos += stride;
        if (pos >= n)
            pos -= n;
    }
    return frame;
}

std::vector<core::Bytes>
expectedFrameHashes(const core::Bytes &page_content,
                    const hw::DisplaySpec &display,
                    const hw::FrameHashEngine &engine)
{
    std::vector<core::Bytes> hashes;
    for (const auto &view : standardViews())
        hashes.push_back(
            engine.hashFrame(renderFrame(page_content, view, display)));
    return hashes;
}

} // namespace trust::trust
