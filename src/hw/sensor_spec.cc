#include "hw/sensor_spec.hh"

#include <cmath>

namespace trust::hw {

SensorSpec
specLee1999()
{
    SensorSpec spec;
    spec.name = "Lee 1999 [24]";
    spec.cellPitchUm = 42.0;
    spec.rows = 64;
    spec.cols = 256;
    spec.clockHz = 4e6;
    spec.addressing = Addressing::ParallelRow;
    // 3 ms * 4 MHz / 64 rows = 187 cycles/row.
    spec.rowOverheadCycles = 186;
    spec.publishedResponseMs = 3.0;
    return spec;
}

SensorSpec
specShigematsu1999()
{
    SensorSpec spec;
    spec.name = "Shigematsu 1999 [20]";
    spec.cellPitchUm = 81.6;
    spec.rows = 124;
    spec.cols = 166;
    // Clock unpublished; 3 MHz with 48-cycle rows gives the
    // published 2 ms.
    spec.clockHz = 3e6;
    spec.addressing = Addressing::ParallelRow;
    spec.rowOverheadCycles = 47;
    spec.publishedResponseMs = 2.0;
    return spec;
}

SensorSpec
specHashido2003()
{
    SensorSpec spec;
    spec.name = "Hashido 2003 [10]";
    spec.cellPitchUm = 60.0;
    spec.rows = 320;
    spec.cols = 250;
    spec.clockHz = 500e3;
    spec.addressing = Addressing::ParallelRow;
    // 160 ms * 500 kHz / 320 rows = 250 cycles/row (slow poly-Si
    // lines need long settle).
    spec.rowOverheadCycles = 249;
    spec.publishedResponseMs = 160.0;
    return spec;
}

SensorSpec
specHara2004()
{
    SensorSpec spec;
    spec.name = "Hara 2004 [9]";
    spec.cellPitchUm = 66.0;
    spec.rows = 304;
    spec.cols = 304;
    spec.clockHz = 250e3;
    spec.addressing = Addressing::ParallelRow;
    // 200 ms * 250 kHz / 304 rows = 164 cycles/row.
    spec.rowOverheadCycles = 163;
    spec.publishedResponseMs = 200.0;
    return spec;
}

SensorSpec
specShimamura2010()
{
    SensorSpec spec;
    spec.name = "Shimamura 2010 [21]";
    spec.cellPitchUm = 50.0;
    spec.rows = 224;
    spec.cols = 256;
    // Clock unpublished; 875 kHz with 78-cycle rows gives the
    // published 20 ms.
    spec.clockHz = 875e3;
    spec.addressing = Addressing::ParallelRow;
    spec.rowOverheadCycles = 77;
    spec.publishedResponseMs = 20.0;
    return spec;
}

std::vector<SensorSpec>
tableTwoSpecs()
{
    return {specLee1999(), specShigematsu1999(), specHashido2003(),
            specHara2004(), specShimamura2010()};
}

SensorSpec
specFlockTile(double side_mm)
{
    SensorSpec spec;
    spec.name = "FLock transparent TFT tile";
    spec.cellPitchUm = 50.8; // 500 dpi
    spec.rows = static_cast<int>(
        std::lround(side_mm * 1000.0 / spec.cellPitchUm));
    spec.cols = spec.rows;
    spec.clockHz = 4e6;
    spec.addressing = Addressing::ParallelRow;
    spec.rowOverheadCycles = 48;
    spec.busBits = 16;
    return spec;
}

} // namespace trust::hw
