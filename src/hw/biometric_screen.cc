#include "hw/biometric_screen.hh"

#include <algorithm>
#include <cmath>

#include "core/logging.hh"

namespace trust::hw {

BiometricTouchscreen::BiometricTouchscreen(
    const TouchPanelSpec &panel_spec, std::vector<PlacedSensor> sensors)
    : panel_(panel_spec), placed_(std::move(sensors))
{
    arrays_.reserve(placed_.size());
    for (const auto &p : placed_) {
        TRUST_ASSERT(
            panel_.spec().screen.bounds().intersects(p.region) ||
                p.region.area() == 0.0,
            "BiometricTouchscreen: sensor tile off-screen");
        arrays_.emplace_back(p.spec);
    }
}

double
BiometricTouchscreen::coverageFraction() const
{
    // Tiles are placed disjointly by the placement optimizer; sum of
    // areas over screen area (overlaps would double count and are the
    // placement layer's responsibility to avoid).
    double covered = 0.0;
    for (const auto &p : placed_)
        covered += p.region
                       .intersection(panel_.spec().screen.bounds())
                       .area();
    return covered / panel_.spec().screen.bounds().area();
}

int
BiometricTouchscreen::sensorAt(const core::Vec2 &position) const
{
    for (std::size_t i = 0; i < placed_.size(); ++i)
        if (placed_[i].region.contains(position))
            return static_cast<int>(i);
    return -1;
}

core::CellIndex
BiometricTouchscreen::toCellAddress(int sensor_index,
                                    const core::Vec2 &position) const
{
    TRUST_ASSERT(sensor_index >= 0 &&
                     sensor_index < static_cast<int>(placed_.size()),
                 "toCellAddress: bad sensor index");
    const auto &p = placed_[static_cast<std::size_t>(sensor_index)];
    TRUST_ASSERT(p.region.contains(position),
                 "toCellAddress: position outside tile");

    const double pitch_mm = p.spec.cellPitchUm / 1000.0;
    core::CellIndex cell;
    cell.col = std::clamp(
        static_cast<int>((position.x - p.region.x0) / pitch_mm), 0,
        p.spec.cols - 1);
    cell.row = std::clamp(
        static_cast<int>((position.y - p.region.y0) / pitch_mm), 0,
        p.spec.rows - 1);
    return cell;
}

void
BiometricTouchscreen::injectSensorFaults(
    int sensor_index, const SensorFaultProfile &profile)
{
    TRUST_ASSERT(sensor_index >= 0 &&
                     sensor_index < static_cast<int>(arrays_.size()),
                 "injectSensorFaults: bad sensor index");
    arrays_[static_cast<std::size_t>(sensor_index)].injectFaults(
        profile);
}

void
BiometricTouchscreen::clearSensorFaults()
{
    for (auto &array : arrays_)
        array.clearFaults();
}

const TftSensorArray &
BiometricTouchscreen::array(int sensor_index) const
{
    TRUST_ASSERT(sensor_index >= 0 &&
                     sensor_index < static_cast<int>(arrays_.size()),
                 "array: bad sensor index");
    return arrays_[static_cast<std::size_t>(sensor_index)];
}

OpportunisticCapture
BiometricTouchscreen::captureAtTouch(const core::Vec2 &touch_position,
                                     double window_mm)
{
    OpportunisticCapture result;
    result.touch = panel_.sense(touch_position);
    result.totalLatency = result.touch.latency;

    // Coverage is judged on the true touch point: the tile either
    // physically sits under the finger or it does not. (The panel's
    // quantized report only affects window centering.)
    result.sensorIndex = sensorAt(touch_position);
    if (result.sensorIndex < 0)
        return result; // Fig. 6: keep waiting for future touches.
    result.covered = true;

    auto &array =
        arrays_[static_cast<std::size_t>(result.sensorIndex)];
    const auto &p =
        placed_[static_cast<std::size_t>(result.sensorIndex)];

    // Centre the window on the panel-reported position translated
    // into cell coordinates.
    const core::Vec2 reported =
        p.region.contains(result.touch.position)
            ? result.touch.position
            : touch_position;
    result.cellAddress =
        toCellAddress(result.sensorIndex, reported);

    const double pitch_mm = p.spec.cellPitchUm / 1000.0;
    const int half_cells = std::max(
        1, static_cast<int>(std::lround(window_mm / pitch_mm / 2.0)));
    CellWindow window;
    window.rowBegin = result.cellAddress.row - half_cells;
    window.rowEnd = result.cellAddress.row + half_cells;
    window.colBegin = result.cellAddress.col - half_cells;
    window.colEnd = result.cellAddress.col + half_cells;
    result.window = array.clip(window);

    result.totalLatency += array.activate();
    result.timing = array.capture(result.window);
    result.totalLatency += result.timing.total();
    array.sleep();
    return result;
}

} // namespace trust::hw
