#include "hw/tft_sensor.hh"

#include <algorithm>
#include <cmath>

#include "core/logging.hh"

namespace trust::hw {

TftSensorArray::TftSensorArray(const SensorSpec &spec,
                               const SensorPowerModel &power)
    : spec_(spec), powerModel_(power)
{
    TRUST_ASSERT(spec_.rows > 0 && spec_.cols > 0,
                 "TftSensorArray: empty array");
    TRUST_ASSERT(spec_.clockHz > 0.0,
                 "TftSensorArray: clock must be positive");
}

core::Tick
TftSensorArray::activate()
{
    if (power_ == SensorPower::Active)
        return 0;
    power_ = SensorPower::Active;
    return powerModel_.activationTime;
}

void
TftSensorArray::sleep()
{
    power_ = SensorPower::Idle;
}

CellWindow
TftSensorArray::fullWindow() const
{
    return {0, spec_.rows, 0, spec_.cols};
}

CellWindow
TftSensorArray::clip(const CellWindow &window) const
{
    CellWindow out;
    out.rowBegin = std::clamp(window.rowBegin, 0, spec_.rows);
    out.rowEnd = std::clamp(window.rowEnd, out.rowBegin, spec_.rows);
    out.colBegin = std::clamp(window.colBegin, 0, spec_.cols);
    out.colEnd = std::clamp(window.colEnd, out.colBegin, spec_.cols);
    return out;
}

void
TftSensorArray::injectFaults(const SensorFaultProfile &profile)
{
    faults_ = profile;
    auto in_range = [](int lo, int hi) {
        return [lo, hi](int v) { return v < lo || v >= hi; };
    };
    auto &rows = faults_.deadRows;
    rows.erase(std::remove_if(rows.begin(), rows.end(),
                              in_range(0, spec_.rows)),
               rows.end());
    auto &cols = faults_.stuckColumns;
    cols.erase(std::remove_if(cols.begin(), cols.end(),
                              in_range(0, spec_.cols)),
               cols.end());
    faultRng_ = core::Rng(profile.seed);
}

void
TftSensorArray::clearFaults()
{
    faults_ = SensorFaultProfile{};
    faultRng_ = core::Rng(faults_.seed);
}

CaptureTiming
TftSensorArray::capture(const CellWindow &window) const
{
    TRUST_ASSERT(power_ == SensorPower::Active,
                 "TftSensorArray: capture while idle");
    const CellWindow w = clip(window);

    CaptureTiming timing;
    if (w.cells() == 0)
        return timing;

    // Hardware faults: a dead row zeroes every cell of the row, a
    // stuck column every remaining cell of the column; a noise burst
    // swamps the entire window. The scan itself proceeds normally
    // (the controller cannot tell until the pixels come back), so
    // timing and energy are unaffected.
    timing.scannedCells = w.cells();
    const auto dead_rows = static_cast<std::int64_t>(std::count_if(
        faults_.deadRows.begin(), faults_.deadRows.end(),
        [&w](int r) { return r >= w.rowBegin && r < w.rowEnd; }));
    const auto stuck_cols = static_cast<std::int64_t>(std::count_if(
        faults_.stuckColumns.begin(), faults_.stuckColumns.end(),
        [&w](int c) { return c >= w.colBegin && c < w.colEnd; }));
    timing.faultyCells =
        dead_rows * w.cols() + stuck_cols * (w.rows() - dead_rows);
    timing.noiseBurst = faults_.noiseBurstRate > 0.0 &&
                        faultRng_.chance(faults_.noiseBurstRate);

    const core::Tick period = core::clockPeriod(spec_.clockHz);

    // Scan: each selected row is enabled once. Parallel-row designs
    // convert all columns in one overhead window; serial designs pay
    // one cycle per cell on top of the row overhead.
    std::uint64_t scan_cycles = 0;
    if (spec_.addressing == Addressing::ParallelRow) {
        scan_cycles = static_cast<std::uint64_t>(w.rows()) *
                      static_cast<std::uint64_t>(
                          spec_.rowOverheadCycles);
    } else {
        scan_cycles =
            static_cast<std::uint64_t>(w.rows()) *
            (static_cast<std::uint64_t>(spec_.rowOverheadCycles) +
             static_cast<std::uint64_t>(spec_.cols));
    }
    timing.scan = scan_cycles * period;

    // Selective transfer: 1-bit pixels from the latches of the
    // selected columns only, busBits per cycle.
    const std::int64_t bits = w.cells();
    timing.bytesTransferred = (bits + 7) / 8;
    const std::uint64_t transfer_cycles =
        (static_cast<std::uint64_t>(bits) +
         static_cast<std::uint64_t>(spec_.busBits) - 1) /
        static_cast<std::uint64_t>(spec_.busBits);
    timing.transfer = transfer_cycles * period;

    // Energy: active power over the busy time plus per-cell
    // conversion energy. With parallel addressing every column
    // converts whenever a row is enabled, selected or not.
    const std::int64_t converted =
        spec_.addressing == Addressing::ParallelRow
            ? static_cast<std::int64_t>(w.rows()) * spec_.cols
            : w.cells();
    const double busy_s =
        core::toSeconds(timing.scan + timing.transfer);
    timing.energyMicroJoule =
        busy_s * powerModel_.activePowerMw * 1e3 +
        static_cast<double>(converted) *
            powerModel_.energyPerCellPj * 1e-6;
    return timing;
}

CaptureTiming
TftSensorArray::captureFull() const
{
    return capture(fullWindow());
}

} // namespace trust::hw
