#include "hw/touch_panel.hh"

#include <algorithm>
#include <cmath>

#include "core/logging.hh"

namespace trust::hw {

TouchPanel::TouchPanel(const TouchPanelSpec &spec)
    : spec_(spec)
{
    TRUST_ASSERT(spec_.rowElectrodes > 0 && spec_.colElectrodes > 0,
                 "TouchPanel: need positive electrode counts");
    TRUST_ASSERT(spec_.scanRateHz > 0.0,
                 "TouchPanel: scan rate must be positive");
}

core::Tick
TouchPanel::scanLatency() const
{
    // Rows and columns scan concurrently on the two ITO layers.
    const int electrodes =
        std::max(spec_.rowElectrodes, spec_.colElectrodes);
    const double cycles =
        static_cast<double>(electrodes) * spec_.cyclesPerElectrode;
    const double seconds = cycles / spec_.scanRateHz;
    return static_cast<core::Tick>(std::llround(seconds * 1e9));
}

double
TouchPanel::pitchX() const
{
    return spec_.screen.widthMm / spec_.colElectrodes;
}

double
TouchPanel::pitchY() const
{
    return spec_.screen.heightMm / spec_.rowElectrodes;
}

TouchReading
TouchPanel::sense(const core::Vec2 &position) const
{
    const core::Vec2 p = spec_.screen.bounds().clamp(position);

    TouchReading reading;
    reading.cell.col = std::clamp(
        static_cast<int>(p.x / pitchX()), 0, spec_.colElectrodes - 1);
    reading.cell.row = std::clamp(
        static_cast<int>(p.y / pitchY()), 0, spec_.rowElectrodes - 1);
    // Reported position is the electrode-cell centre: localization is
    // quantized by the electrode pitch.
    reading.position = {(reading.cell.col + 0.5) * pitchX(),
                        (reading.cell.row + 0.5) * pitchY()};
    reading.latency = scanLatency();
    return reading;
}

std::vector<TouchReading>
TouchPanel::senseMulti(const std::vector<core::Vec2> &positions) const
{
    std::vector<TouchReading> readings;
    readings.reserve(positions.size());
    for (const auto &p : positions) {
        TouchReading r = sense(p);
        // Aliasing: drop duplicates landing on an already-reported
        // cell (indistinguishable on the electrode grid).
        const bool duplicate =
            std::any_of(readings.begin(), readings.end(),
                        [&](const TouchReading &seen) {
                            return seen.cell == r.cell;
                        });
        if (!duplicate)
            readings.push_back(r);
    }
    return readings;
}

} // namespace trust::hw
