#include "hw/flock_hw.hh"

#include <cmath>

#include "core/logging.hh"
#include "crypto/md5.hh"
#include "crypto/sha256.hh"

namespace trust::hw {

FrameHashEngine::FrameHashEngine(Algorithm algorithm, double clock_hz,
                                 int bytes_per_cycle)
    : algorithm_(algorithm), clockHz_(clock_hz),
      bytesPerCycle_(bytes_per_cycle)
{
    TRUST_ASSERT(clock_hz > 0.0 && bytes_per_cycle > 0,
                 "FrameHashEngine: bad parameters");
}

core::Bytes
FrameHashEngine::hashFrame(const core::Bytes &frame) const
{
    if (algorithm_ == Algorithm::Sha256)
        return crypto::Sha256::digest(frame);
    return crypto::Md5::digest(frame);
}

core::Tick
FrameHashEngine::hashLatency(std::int64_t bytes) const
{
    TRUST_ASSERT(bytes >= 0, "hashLatency: negative size");
    // MD5 rounds are cheaper in hardware; model as 1.6x throughput.
    const double effective_bpc =
        algorithm_ == Algorithm::Md5 ? bytesPerCycle_ * 1.6
                                     : bytesPerCycle_;
    const double cycles = static_cast<double>(bytes) / effective_bpc;
    return static_cast<core::Tick>(
        std::llround(cycles / clockHz_ * 1e9));
}

core::Tick
CryptoProcessorModel::aesLatency(std::int64_t bytes) const
{
    return static_cast<core::Tick>(std::llround(
        static_cast<double>(bytes) / aesBytesPerMicrosecond * 1e3));
}

core::Tick
CryptoProcessorModel::shaLatency(std::int64_t bytes) const
{
    return static_cast<core::Tick>(std::llround(
        static_cast<double>(bytes) / shaBytesPerMicrosecond * 1e3));
}

ProtectedStore::ProtectedStore(std::size_t flash_capacity_bytes,
                               core::Tick read_latency,
                               core::Tick write_latency)
    : capacity_(flash_capacity_bytes), readLatency_(read_latency),
      writeLatency_(write_latency)
{
}

bool
ProtectedStore::put(const std::string &key, const core::Bytes &value)
{
    const std::size_t entry_size = key.size() + value.size();
    std::size_t reclaimed = 0;
    auto it = records_.find(key);
    if (it != records_.end())
        reclaimed = key.size() + it->second.size();
    if (used_ - reclaimed + entry_size > capacity_)
        return false;
    used_ = used_ - reclaimed + entry_size;
    records_[key] = value;
    return true;
}

std::optional<core::Bytes>
ProtectedStore::get(const std::string &key) const
{
    auto it = records_.find(key);
    if (it == records_.end())
        return std::nullopt;
    return it->second;
}

void
ProtectedStore::erase(const std::string &key)
{
    auto it = records_.find(key);
    if (it == records_.end())
        return;
    used_ -= key.size() + it->second.size();
    records_.erase(it);
}

void
ProtectedStore::wipeAll()
{
    records_.clear();
    used_ = 0;
}

} // namespace trust::hw
