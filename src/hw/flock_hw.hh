/**
 * @file
 * Timing/capacity models of the remaining FLock blocks (Fig. 5):
 * the display repeater + frame hash engine, the crypto processor,
 * and the protected on-module store (SRAM + Flash). These bound the
 * hardware budget of the end-to-end pipeline reproduced by the
 * Fig. 5 bench.
 */

#ifndef TRUST_HW_FLOCK_HW_HH
#define TRUST_HW_FLOCK_HW_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "core/bytes.hh"
#include "core/sim_clock.hh"

namespace trust::hw {

/** Display geometry relayed by the display repeater. */
struct DisplaySpec
{
    int width = 480;  ///< 2012-era WVGA panel.
    int height = 800;
    int bytesPerPixel = 2; ///< RGB565.

    std::int64_t
    frameBytes() const
    {
        return static_cast<std::int64_t>(width) * height *
               bytesPerPixel;
    }
};

/**
 * Frame hash engine: hashes the frames the display repeater relays
 * (Sec. III-B). Computes real digests (SHA-256 or MD5) and models
 * the hardware latency from a bytes/cycle throughput.
 */
class FrameHashEngine
{
  public:
    enum class Algorithm { Sha256, Md5 };

    explicit FrameHashEngine(Algorithm algorithm = Algorithm::Sha256,
                             double clock_hz = 200e6,
                             int bytes_per_cycle = 8);

    Algorithm algorithm() const { return algorithm_; }

    /** Digest of a frame buffer. */
    core::Bytes hashFrame(const core::Bytes &frame) const;

    /** Modeled latency to hash @p bytes of frame data. */
    core::Tick hashLatency(std::int64_t bytes) const;

  private:
    Algorithm algorithm_;
    double clockHz_;
    int bytesPerCycle_;
};

/**
 * Crypto processor latency model: calibrated costs of the public
 * key and symmetric operations the TRUST protocol issues. The
 * *functional* crypto lives in trust_crypto; this class only prices
 * the operations for pipeline-latency accounting.
 */
struct CryptoProcessorModel
{
    core::Tick rsaSign1024 = core::milliseconds(18);
    core::Tick rsaVerify1024 = core::microseconds(900);
    core::Tick rsaKeygen1024 = core::milliseconds(900);
    double aesBytesPerMicrosecond = 40.0;
    double shaBytesPerMicrosecond = 120.0;

    /** Latency of AES-CTR over @p bytes. */
    core::Tick aesLatency(std::int64_t bytes) const;

    /** Latency of hashing @p bytes on the crypto core. */
    core::Tick shaLatency(std::int64_t bytes) const;
};

/**
 * Protected non-volatile store inside FLock: holds per-domain
 * records (key pairs, templates, server keys) plus the device key.
 * Models capacity and access latency; contents are opaque bytes.
 */
class ProtectedStore
{
  public:
    explicit ProtectedStore(std::size_t flash_capacity_bytes =
                                512 * 1024,
                            core::Tick read_latency =
                                core::microseconds(5),
                            core::Tick write_latency =
                                core::microseconds(60));

    /** Store a record; false (and no change) if capacity exceeded. */
    bool put(const std::string &key, const core::Bytes &value);

    /** Fetch a record if present. */
    std::optional<core::Bytes> get(const std::string &key) const;

    /** Remove a record (idempotent). */
    void erase(const std::string &key);

    /** Wipe everything (identity reset of a lost/sold device). */
    void wipeAll();

    std::size_t usedBytes() const { return used_; }
    std::size_t capacityBytes() const { return capacity_; }
    std::size_t recordCount() const { return records_.size(); }

    core::Tick readLatency() const { return readLatency_; }
    core::Tick writeLatency() const { return writeLatency_; }

  private:
    std::size_t capacity_;
    core::Tick readLatency_;
    core::Tick writeLatency_;
    std::size_t used_ = 0;
    std::map<std::string, core::Bytes> records_;
};

} // namespace trust::hw

#endif // TRUST_HW_FLOCK_HW_HH
