/**
 * @file
 * Capacitive touch panel model (Fig. 1).
 *
 * Two ITO electrode layers sense rows (X) and columns (Y) in
 * parallel; a touch is localized by combining the row and column
 * scans. The model reproduces the ~4 ms response time of typical
 * capacitive controllers (Sec. II-B) and exposes the electrode
 * pitch that bounds localization accuracy.
 */

#ifndef TRUST_HW_TOUCH_PANEL_HH
#define TRUST_HW_TOUCH_PANEL_HH

#include <vector>

#include "core/geometry.hh"
#include "core/sim_clock.hh"
#include "touch/ui.hh"

namespace trust::hw {

/** Electrical/geometric description of a capacitive panel. */
struct TouchPanelSpec
{
    touch::ScreenSpec screen;
    int rowElectrodes = 20;  ///< Y-sensing lines (bottom ITO layer).
    int colElectrodes = 12;  ///< X-sensing lines (top ITO layer).
    double scanRateHz = 120e3; ///< Electrode scan rate.

    /**
     * Cycles to sense one electrode (charge transfer + ADC);
     * calibrated so the default panel responds in ~4 ms.
     */
    int cyclesPerElectrode = 15;
};

/** Result of localizing one touch. */
struct TouchReading
{
    core::Vec2 position;  ///< Quantized touch centre in screen mm.
    core::CellIndex cell; ///< (row, col) electrode indices.
    core::Tick latency = 0; ///< Scan latency for this reading.
};

/** Capacitive touch panel with parallel row/column sensing. */
class TouchPanel
{
  public:
    explicit TouchPanel(const TouchPanelSpec &spec = {});

    const TouchPanelSpec &spec() const { return spec_; }

    /**
     * Scan latency of one full panel sweep: rows and columns are
     * sensed in parallel (Sec. II-B), so the slower layer dominates.
     */
    core::Tick scanLatency() const;

    /** Localize a single touch-down point. */
    TouchReading sense(const core::Vec2 &position) const;

    /**
     * Localize several simultaneous touches (multi-touch). Touches
     * closer than one electrode pitch alias to the same cell, as on
     * real mutual-capacitance panels.
     */
    std::vector<TouchReading>
    senseMulti(const std::vector<core::Vec2> &positions) const;

    /** Electrode pitch in mm (x direction). */
    double pitchX() const;

    /** Electrode pitch in mm (y direction). */
    double pitchY() const;

  private:
    TouchPanelSpec spec_;
};

} // namespace trust::hw

#endif // TRUST_HW_TOUCH_PANEL_HH
