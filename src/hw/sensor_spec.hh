/**
 * @file
 * Fingerprint sensor specifications, including the five published
 * designs surveyed in Table II of the paper. Each spec carries the
 * published cell size, array resolution and clock plus a fitted
 * per-row overhead so the timing model reproduces the published
 * response time.
 */

#ifndef TRUST_HW_SENSOR_SPEC_HH
#define TRUST_HW_SENSOR_SPEC_HH

#include <string>
#include <vector>

namespace trust::hw {

/** Row addressing strategy of the readout (Fig. 4). */
enum class Addressing
{
    /** One cell converted per clock (no per-column comparators). */
    SerialCell,
    /**
     * A whole row converted in parallel by per-column comparators
     * and latched (the paper's design).
     */
    ParallelRow,
};

/** Static description of a TFT/CMOS fingerprint sensor array. */
struct SensorSpec
{
    std::string name;       ///< Design name / citation tag.
    double cellPitchUm = 50.8; ///< Sensing cell pitch (micrometres).
    int rows = 224;         ///< Scan lines.
    int cols = 256;         ///< Columns (one comparator each).
    double clockHz = 2e6;   ///< Readout clock.
    Addressing addressing = Addressing::ParallelRow;

    /**
     * Extra cycles spent per row beyond the conversion itself
     * (line charge, settle, latch strobe). Fitted so modeled
     * response matches published response for the Table II designs.
     */
    int rowOverheadCycles = 48;

    /** Transfer bus width in bits (latch readout to controller). */
    int busBits = 8;

    /** Published end-to-end response time in ms (0 if unpublished). */
    double publishedResponseMs = 0.0;

    /** Physical sensing area width in millimetres. */
    double widthMm() const { return cols * cellPitchUm / 1000.0; }

    /** Physical sensing area height in millimetres. */
    double heightMm() const { return rows * cellPitchUm / 1000.0; }

    /** Dots-per-inch of the array. */
    double dpi() const { return 25400.0 / cellPitchUm; }
};

/** @{ @name Table II designs. */

/** Lee et al., JSSC 1999 [24]: 600-dpi CMOS, 42 um, 64x256, 4 MHz. */
SensorSpec specLee1999();

/** Shigematsu et al., JSSC 1999 [20]: 81.6 um, 124x166, 2 ms. */
SensorSpec specShigematsu1999();

/** Hashido et al., JSSC 2003 [10]: poly-Si TFT, 60 um, 320x250. */
SensorSpec specHashido2003();

/** Hara et al., ESSCIRC 2004 [9]: TFT + comparator, 66 um, 304x304. */
SensorSpec specHara2004();

/** Shimamura et al., JSSC 2010 [21]: 50 um, 224x256, 20 ms. */
SensorSpec specShimamura2010();

/** All five Table II designs in paper order. */
std::vector<SensorSpec> tableTwoSpecs();

/** @} */

/**
 * The transparent TFT sensor tile used by the biometric touchscreen
 * in this work: a small (default 4 x 4 mm) 500-dpi array with
 * parallel row addressing, fast enough for opportunistic capture
 * within a tap.
 */
SensorSpec specFlockTile(double side_mm = 4.0);

} // namespace trust::hw

#endif // TRUST_HW_SENSOR_SPEC_HH
