/**
 * @file
 * The unified biometric touch-display (Sec. III-A): a capacitive
 * touch panel with transparent TFT fingerprint sensor tiles overlaid
 * at chosen screen regions. Implements the fingerprint controller's
 * coordinate translation (touchscreen mm -> sensor line/column
 * address) and the opportunistic capture sequence: touch sensed ->
 * covering tile activated -> window around the touch point scanned
 * with selective column transfer.
 */

#ifndef TRUST_HW_BIOMETRIC_SCREEN_HH
#define TRUST_HW_BIOMETRIC_SCREEN_HH

#include <optional>
#include <vector>

#include "core/geometry.hh"
#include "hw/tft_sensor.hh"
#include "hw/touch_panel.hh"

namespace trust::hw {

/** One sensor tile glued over a screen region. */
struct PlacedSensor
{
    core::Rect region; ///< Covered screen area in mm.
    SensorSpec spec;   ///< Array design of the tile.
};

/** Outcome of an opportunistic capture attempt (Fig. 6 step 1). */
struct OpportunisticCapture
{
    bool covered = false;     ///< Touch fell on a sensor tile.
    int sensorIndex = -1;     ///< Which tile (if covered).
    TouchReading touch;       ///< Panel localization result.
    core::CellIndex cellAddress; ///< Translated line/column address.
    CellWindow window;        ///< Cell window actually scanned.
    CaptureTiming timing;     ///< Sensor-side timing/energy.
    core::Tick totalLatency = 0; ///< Panel scan + capture total.
};

/** The integrated panel + sensor-tile assembly. */
class BiometricTouchscreen
{
  public:
    BiometricTouchscreen(const TouchPanelSpec &panel_spec,
                         std::vector<PlacedSensor> sensors);

    const TouchPanel &panel() const { return panel_; }
    const std::vector<PlacedSensor> &sensors() const
    {
        return placed_;
    }

    /** Fraction of the screen area covered by sensor tiles. */
    double coverageFraction() const;

    /** Index of the tile containing @p position, or -1. */
    int sensorAt(const core::Vec2 &position) const;

    /**
     * Fingerprint-controller coordinate translation: screen mm to
     * the tile's cell (line, column) address. Fatal if the point
     * lies outside the tile.
     */
    core::CellIndex toCellAddress(int sensor_index,
                                  const core::Vec2 &position) const;

    /**
     * The full opportunistic sequence for one touch: panel scan,
     * coverage check, tile activation, windowed capture around the
     * touch point, tile back to sleep.
     *
     * @param touch_position true touch-down point in screen mm.
     * @param window_mm      square capture window side (mm); the
     *                       window is clipped to the tile.
     */
    OpportunisticCapture captureAtTouch(const core::Vec2 &touch_position,
                                        double window_mm = 4.0);

    /** Inject a hardware fault profile into one sensor tile. */
    void injectSensorFaults(int sensor_index,
                            const SensorFaultProfile &profile);

    /** Clear injected faults on every tile. */
    void clearSensorFaults();

    /** The tile array model (for fault/spec inspection). */
    const TftSensorArray &array(int sensor_index) const;

  private:
    TouchPanel panel_;
    std::vector<PlacedSensor> placed_;
    std::vector<TftSensorArray> arrays_;
};

} // namespace trust::hw

#endif // TRUST_HW_BIOMETRIC_SCREEN_HH
