/**
 * @file
 * TFT fingerprint sensor array timing/behaviour model (Figs. 2, 4).
 *
 * Models the readout micro-architecture the paper describes: a line
 * decoder drives a parallel-in/parallel-out shift register that
 * enables one row of capacitive cells at a time; per-column
 * comparators digitize the whole row in parallel into latches; the
 * fingerprint controller then transfers only the latch columns
 * inside a selected window (selective data transfer). The model is
 * cycle-approximate at row/transfer granularity and also tracks
 * power state and energy.
 */

#ifndef TRUST_HW_TFT_SENSOR_HH
#define TRUST_HW_TFT_SENSOR_HH

#include <cstdint>
#include <vector>

#include "core/rng.hh"
#include "core/sim_clock.hh"
#include "hw/sensor_spec.hh"

namespace trust::hw {

/** Power state of a sensor tile (opportunistic activation). */
enum class SensorPower
{
    Idle,   ///< Unpowered except wake logic.
    Active, ///< Scanning.
};

/** A rectangular cell window to capture (rows/cols inclusive). */
struct CellWindow
{
    int rowBegin = 0;
    int rowEnd = 0; ///< exclusive
    int colBegin = 0;
    int colEnd = 0; ///< exclusive

    int rows() const { return rowEnd - rowBegin; }
    int cols() const { return colEnd - colBegin; }
    std::int64_t
    cells() const
    {
        return static_cast<std::int64_t>(rows()) * cols();
    }
};

/** Timing/energy breakdown of one capture. */
struct CaptureTiming
{
    core::Tick activation = 0; ///< Idle -> active power-up.
    core::Tick scan = 0;       ///< Row addressing + conversion.
    core::Tick transfer = 0;   ///< Latch-to-controller transfer.
    std::int64_t bytesTransferred = 0;
    double energyMicroJoule = 0.0;

    /** Cells in the scanned window on a dead row / stuck column. */
    std::int64_t faultyCells = 0;
    /** Total cells scanned (denominator for faultyFraction). */
    std::int64_t scannedCells = 0;
    /** Whole capture swamped by a transient noise burst. */
    bool noiseBurst = false;

    core::Tick total() const { return activation + scan + transfer; }

    /** Fraction of scanned cells that carried no ridge signal. */
    double
    faultyFraction() const
    {
        if (noiseBurst)
            return 1.0;
        return scannedCells > 0 ? static_cast<double>(faultyCells) /
                                      static_cast<double>(scannedCells)
                                : 0.0;
    }
};

/**
 * Hardware degradation of one sensor tile: manufacturing or aging
 * defects (whole rows whose select line is dead, columns whose
 * comparator is stuck) plus transient noise bursts that swamp an
 * entire capture. Injected for chaos experiments; captures report
 * how much of their window was faulty so upper layers can treat
 * degraded captures as "no evidence" instead of impostor evidence.
 */
struct SensorFaultProfile
{
    std::vector<int> deadRows;     ///< Row indices reading all-zero.
    std::vector<int> stuckColumns; ///< Columns stuck at one value.
    double noiseBurstRate = 0.0;   ///< Per-capture burst probability.
    std::uint64_t seed = 0x5EED;   ///< Burst RNG seed (reproducible).
};

/** Configurable energy/activation constants. */
struct SensorPowerModel
{
    core::Tick activationTime = core::microseconds(50);
    double activePowerMw = 18.0;    ///< While scanning/transferring.
    double idlePowerUw = 2.0;       ///< Leakage in idle.
    double energyPerCellPj = 350.0; ///< Conversion energy per cell.
};

/** The sensor array model. */
class TftSensorArray
{
  public:
    explicit TftSensorArray(const SensorSpec &spec,
                            const SensorPowerModel &power = {});

    const SensorSpec &spec() const { return spec_; }
    SensorPower powerState() const { return power_; }

    /** Wake the tile (returns activation latency; idempotent). */
    core::Tick activate();

    /** Return to idle. */
    void sleep();

    /** The full-array window. */
    CellWindow fullWindow() const;

    /**
     * Clip an arbitrary window against the array bounds; empty
     * windows collapse to zero cells.
     */
    CellWindow clip(const CellWindow &window) const;

    /**
     * Model one capture of @p window. The scan must enable every
     * row in the window; with parallel-row addressing all columns
     * convert simultaneously and only the selected columns are
     * transferred (Fig. 4); with serial addressing every cell in
     * the window costs a cycle.
     *
     * Fatal if the tile is idle (callers must activate() first,
     * mirroring the opportunistic power discipline).
     */
    CaptureTiming capture(const CellWindow &window) const;

    /** Convenience: capture of the whole array. */
    CaptureTiming captureFull() const;

    /** Install a fault profile (rows/columns clipped to the array). */
    void injectFaults(const SensorFaultProfile &profile);

    /** Remove all injected faults. */
    void clearFaults();

    const SensorFaultProfile &faults() const { return faults_; }

  private:
    SensorSpec spec_;
    SensorPowerModel powerModel_;
    SensorPower power_ = SensorPower::Idle;
    SensorFaultProfile faults_;
    /** Burst draws happen inside const capture() (mutable state). */
    mutable core::Rng faultRng_{0x5EED};
};

} // namespace trust::hw

#endif // TRUST_HW_TFT_SENSOR_HH
