/**
 * @file
 * TFT fingerprint sensor array timing/behaviour model (Figs. 2, 4).
 *
 * Models the readout micro-architecture the paper describes: a line
 * decoder drives a parallel-in/parallel-out shift register that
 * enables one row of capacitive cells at a time; per-column
 * comparators digitize the whole row in parallel into latches; the
 * fingerprint controller then transfers only the latch columns
 * inside a selected window (selective data transfer). The model is
 * cycle-approximate at row/transfer granularity and also tracks
 * power state and energy.
 */

#ifndef TRUST_HW_TFT_SENSOR_HH
#define TRUST_HW_TFT_SENSOR_HH

#include <cstdint>

#include "core/sim_clock.hh"
#include "hw/sensor_spec.hh"

namespace trust::hw {

/** Power state of a sensor tile (opportunistic activation). */
enum class SensorPower
{
    Idle,   ///< Unpowered except wake logic.
    Active, ///< Scanning.
};

/** A rectangular cell window to capture (rows/cols inclusive). */
struct CellWindow
{
    int rowBegin = 0;
    int rowEnd = 0; ///< exclusive
    int colBegin = 0;
    int colEnd = 0; ///< exclusive

    int rows() const { return rowEnd - rowBegin; }
    int cols() const { return colEnd - colBegin; }
    std::int64_t
    cells() const
    {
        return static_cast<std::int64_t>(rows()) * cols();
    }
};

/** Timing/energy breakdown of one capture. */
struct CaptureTiming
{
    core::Tick activation = 0; ///< Idle -> active power-up.
    core::Tick scan = 0;       ///< Row addressing + conversion.
    core::Tick transfer = 0;   ///< Latch-to-controller transfer.
    std::int64_t bytesTransferred = 0;
    double energyMicroJoule = 0.0;

    core::Tick total() const { return activation + scan + transfer; }
};

/** Configurable energy/activation constants. */
struct SensorPowerModel
{
    core::Tick activationTime = core::microseconds(50);
    double activePowerMw = 18.0;    ///< While scanning/transferring.
    double idlePowerUw = 2.0;       ///< Leakage in idle.
    double energyPerCellPj = 350.0; ///< Conversion energy per cell.
};

/** The sensor array model. */
class TftSensorArray
{
  public:
    explicit TftSensorArray(const SensorSpec &spec,
                            const SensorPowerModel &power = {});

    const SensorSpec &spec() const { return spec_; }
    SensorPower powerState() const { return power_; }

    /** Wake the tile (returns activation latency; idempotent). */
    core::Tick activate();

    /** Return to idle. */
    void sleep();

    /** The full-array window. */
    CellWindow fullWindow() const;

    /**
     * Clip an arbitrary window against the array bounds; empty
     * windows collapse to zero cells.
     */
    CellWindow clip(const CellWindow &window) const;

    /**
     * Model one capture of @p window. The scan must enable every
     * row in the window; with parallel-row addressing all columns
     * convert simultaneously and only the selected columns are
     * transferred (Fig. 4); with serial addressing every cell in
     * the window costs a cycle.
     *
     * Fatal if the tile is idle (callers must activate() first,
     * mirroring the opportunistic power discipline).
     */
    CaptureTiming capture(const CellWindow &window) const;

    /** Convenience: capture of the whole array. */
    CaptureTiming captureFull() const;

  private:
    SensorSpec spec_;
    SensorPowerModel powerModel_;
    SensorPower power_ = SensorPower::Idle;
};

} // namespace trust::hw

#endif // TRUST_HW_TFT_SENSOR_HH
