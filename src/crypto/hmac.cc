#include "crypto/hmac.hh"

#include "core/logging.hh"
#include "crypto/sha256.hh"

namespace trust::crypto {

core::Bytes
hmacSha256(const core::Bytes &key, const core::Bytes &message)
{
    constexpr std::size_t block = 64;

    core::Bytes k = key;
    if (k.size() > block)
        k = Sha256::digest(k);
    k.resize(block, 0);

    core::Bytes ipad(block), opad(block);
    for (std::size_t i = 0; i < block; ++i) {
        ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
        opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
    }

    Sha256 inner;
    inner.update(ipad);
    inner.update(message);
    const core::Bytes inner_digest = inner.finish();

    Sha256 outer;
    outer.update(opad);
    outer.update(inner_digest);
    return outer.finish();
}

bool
hmacSha256Verify(const core::Bytes &key, const core::Bytes &message,
                 const core::Bytes &tag)
{
    return core::constantTimeEqual(hmacSha256(key, message), tag);
}

core::Bytes
hkdfSha256(const core::Bytes &ikm, const core::Bytes &salt,
           const core::Bytes &info, std::size_t length)
{
    TRUST_ASSERT(length > 0 && length <= 255 * Sha256::digestSize,
                 "hkdfSha256: invalid output length");

    // Extract.
    const core::Bytes prk = hmacSha256(salt, ikm);

    // Expand.
    core::Bytes okm;
    core::Bytes t;
    std::uint8_t counter = 1;
    while (okm.size() < length) {
        core::Bytes block = t;
        block.insert(block.end(), info.begin(), info.end());
        block.push_back(counter++);
        t = hmacSha256(prk, block);
        okm.insert(okm.end(), t.begin(), t.end());
    }
    okm.resize(length);
    return okm;
}

} // namespace trust::crypto
