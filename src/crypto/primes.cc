#include "crypto/primes.hh"

#include <array>

#include "core/logging.hh"

namespace trust::crypto {

namespace {

/** Small primes for cheap trial division before Miller-Rabin. */
constexpr std::array<std::uint32_t, 54> kSmallPrimes = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,
    41,  43,  47,  53,  59,  61,  67,  71,  73,  79,  83,  89,
    97,  101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151,
    157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223,
    227, 229, 233, 239, 241, 251,
};

/** n mod d for a single-limb divisor. */
std::uint32_t
modSmall(const Bignum &n, std::uint32_t d)
{
    return static_cast<std::uint32_t>((n % Bignum(d)).lowU64());
}

} // namespace

Bignum
randomBits(std::size_t bits, Csprng &rng)
{
    TRUST_ASSERT(bits >= 2, "randomBits: need at least 2 bits");
    const std::size_t bytes = (bits + 7) / 8;
    core::Bytes raw = rng.randomBytes(bytes);

    // Clear excess high bits, then force the MSB.
    const std::size_t excess = bytes * 8 - bits;
    raw[0] &= static_cast<std::uint8_t>(0xff >> excess);
    raw[0] |= static_cast<std::uint8_t>(0x80 >> excess);
    return Bignum::fromBytes(raw);
}

Bignum
randomBelow(const Bignum &bound, Csprng &rng)
{
    TRUST_ASSERT(!bound.isZero(), "randomBelow: zero bound");
    const std::size_t bits = bound.bitLength();
    const std::size_t bytes = (bits + 7) / 8;
    const std::size_t excess = bytes * 8 - bits;
    // Rejection sampling in the minimal byte envelope.
    while (true) {
        core::Bytes raw = rng.randomBytes(bytes);
        raw[0] &= static_cast<std::uint8_t>(0xff >> excess);
        Bignum candidate = Bignum::fromBytes(raw);
        if (candidate < bound)
            return candidate;
    }
}

bool
isProbablePrime(const Bignum &n, Csprng &rng, int rounds)
{
    if (n < Bignum(2))
        return false;
    for (std::uint32_t p : kSmallPrimes) {
        if (n == Bignum(p))
            return true;
        if (modSmall(n, p) == 0)
            return false;
    }

    // Write n-1 = d * 2^r with d odd.
    const Bignum n_minus_1 = n - Bignum(1);
    Bignum d = n_minus_1;
    std::size_t r = 0;
    while (!d.isOdd()) {
        d = d.shiftedRight(1);
        ++r;
    }

    Montgomery mont(n);
    const Bignum two(2);
    const Bignum n_minus_3 = n - Bignum(3);

    for (int round = 0; round < rounds; ++round) {
        // Random base in [2, n-2].
        const Bignum a = randomBelow(n_minus_3, rng) + two;
        Bignum x = mont.modExp(a, d);
        if (x == Bignum(1) || x == n_minus_1)
            continue;
        bool witness = true;
        for (std::size_t i = 1; i < r; ++i) {
            x = (x * x) % n;
            if (x == n_minus_1) {
                witness = false;
                break;
            }
        }
        if (witness)
            return false;
    }
    return true;
}

Bignum
randomPrime(std::size_t bits, Csprng &rng)
{
    TRUST_ASSERT(bits >= 16, "randomPrime: need at least 16 bits");
    while (true) {
        Bignum candidate = randomBits(bits, rng);
        // Force the second-highest bit (so p*q has 2*bits bits) and
        // oddness.
        if (!candidate.bit(bits - 2))
            candidate = candidate + Bignum(1).shifted(bits - 2);
        if (!candidate.isOdd())
            candidate = candidate + Bignum(1);
        if (candidate.bitLength() > bits)
            continue; // carry rippled past the top; resample
        if (isProbablePrime(candidate, rng))
            return candidate;
    }
}

} // namespace trust::crypto
