/**
 * @file
 * RSA public-key cryptosystem over the from-scratch bignum library.
 *
 * The FLock module's build-in device key pair, per-(user, server)
 * binding key pairs and the Web Server / CA key pairs are all RSA.
 * Signing is RSASSA with SHA-256 and PKCS#1-v1.5-style padding;
 * encryption is RSAES with PKCS#1-v1.5-style random padding. These
 * are simulation-grade implementations (not constant-time, no OAEP).
 */

#ifndef TRUST_CRYPTO_RSA_HH
#define TRUST_CRYPTO_RSA_HH

#include <optional>

#include "core/bytes.hh"
#include "crypto/bignum.hh"
#include "crypto/csprng.hh"

namespace trust::crypto {

/** RSA public key (n, e). */
struct RsaPublicKey
{
    Bignum n;
    Bignum e;

    /** Modulus size in bytes (ciphertext/signature length). */
    std::size_t modulusBytes() const { return (n.bitLength() + 7) / 8; }

    /** Canonical serialization (length-prefixed n, e). */
    core::Bytes serialize() const;

    /** Parse a serialized key; nullopt on malformed input. */
    static std::optional<RsaPublicKey> deserialize(const core::Bytes &data);

    /** SHA-256 fingerprint of the serialized key (key identity). */
    core::Bytes fingerprint() const;

    bool operator==(const RsaPublicKey &o) const
    {
        return n == o.n && e == o.e;
    }
};

/** RSA private key (with CRT parameters for fast decryption). */
struct RsaPrivateKey
{
    Bignum n;
    Bignum e;
    Bignum d;
    Bignum p;
    Bignum q;
    Bignum dP;   // d mod (p-1)
    Bignum dQ;   // d mod (q-1)
    Bignum qInv; // q^-1 mod p

    std::size_t modulusBytes() const { return (n.bitLength() + 7) / 8; }

    /** The matching public key. */
    RsaPublicKey publicKey() const { return {n, e}; }

    /** Private-key exponentiation (CRT). */
    Bignum apply(const Bignum &m) const;

    /** Canonical serialization (identity-transfer bundles). */
    core::Bytes serialize() const;

    /** Parse a serialized key; nullopt on malformed input. */
    static std::optional<RsaPrivateKey>
    deserialize(const core::Bytes &data);
};

/** An RSA key pair. */
struct RsaKeyPair
{
    RsaPublicKey pub;
    RsaPrivateKey priv;
};

/**
 * Generate an RSA key pair with a modulus of @p modulus_bits bits
 * (e = 65537). 1024-bit is the simulation default; tests use 512 for
 * speed. Fatal if modulus_bits < 128.
 */
RsaKeyPair rsaGenerate(std::size_t modulus_bits, Csprng &rng);

/**
 * Sign message bytes: SHA-256 hash, PKCS#1-v1.5-style pad, private
 * exponentiation. Returns a modulus-sized signature.
 */
core::Bytes rsaSign(const RsaPrivateKey &key, const core::Bytes &message);

/** Verify an RSA signature over @p message. */
bool rsaVerify(const RsaPublicKey &key, const core::Bytes &message,
               const core::Bytes &signature);

/**
 * Encrypt a short message (at most modulusBytes-11) with random
 * PKCS#1-v1.5-style padding. Fatal if the message is too long.
 */
core::Bytes rsaEncrypt(const RsaPublicKey &key, const core::Bytes &message,
                       Csprng &rng);

/** Decrypt; nullopt if the padding is invalid. */
std::optional<core::Bytes> rsaDecrypt(const RsaPrivateKey &key,
                                      const core::Bytes &ciphertext);

} // namespace trust::crypto

#endif // TRUST_CRYPTO_RSA_HH
