/**
 * @file
 * SHA-256 (FIPS 180-4), from scratch.
 *
 * Used by the FLock frame-hash engine, HMAC, certificate signatures
 * and the fingerprint template digests. Streaming and one-shot APIs.
 */

#ifndef TRUST_CRYPTO_SHA256_HH
#define TRUST_CRYPTO_SHA256_HH

#include <cstdint>

#include "core/bytes.hh"

namespace trust::crypto {

/** Streaming SHA-256 context. */
class Sha256
{
  public:
    /** Digest size in bytes. */
    static constexpr std::size_t digestSize = 32;

    Sha256();

    /** Absorb more message bytes. */
    void update(const std::uint8_t *data, std::size_t len);

    /** Absorb more message bytes. */
    void update(const core::Bytes &data);

    /** Finalize and return the 32-byte digest; context becomes reset. */
    core::Bytes finish();

    /** One-shot convenience. */
    static core::Bytes digest(const core::Bytes &data);

    /** One-shot over a string's bytes. */
    static core::Bytes digest(const std::string &data);

  private:
    void reset();
    void processBlock(const std::uint8_t *block);

    std::uint32_t h_[8];
    std::uint8_t buf_[64];
    std::size_t bufLen_ = 0;
    std::uint64_t totalLen_ = 0;
};

} // namespace trust::crypto

#endif // TRUST_CRYPTO_SHA256_HH
