/**
 * @file
 * Deterministic cryptographically-strong pseudo-random generator.
 *
 * Models the random source inside the FLock crypto processor. Built
 * on ChaCha20 keyed from a seed; deterministic so that protocol
 * simulations are exactly reproducible, with a fast-key-erasure
 * reseed between requests for forward secrecy of generated keys.
 */

#ifndef TRUST_CRYPTO_CSPRNG_HH
#define TRUST_CRYPTO_CSPRNG_HH

#include <cstdint>

#include "core/bytes.hh"
#include "crypto/chacha20.hh"

namespace trust::crypto {

/** ChaCha20-based deterministic CSPRNG. */
class Csprng
{
  public:
    /** Seed from arbitrary bytes (hashed into the key). */
    explicit Csprng(const core::Bytes &seed);

    /** Seed from a 64-bit integer (convenience for simulations). */
    explicit Csprng(std::uint64_t seed);

    /** Fill and return @p n random bytes. */
    core::Bytes randomBytes(std::size_t n);

    /** Uniform 64-bit value. */
    std::uint64_t randomU64();

    /** Uniform value in [0, bound), unbiased; bound must be > 0. */
    std::uint64_t randomBelow(std::uint64_t bound);

    /**
     * Mix caller-provided entropy into the generator state
     * (models the hardware entropy source feeding the DRBG).
     */
    void reseed(const core::Bytes &entropy);

  private:
    void refill();

    core::Bytes key_;
    std::uint64_t blockCounter_ = 0;
    core::Bytes pool_;
    std::size_t poolPos_ = 0;
};

} // namespace trust::crypto

#endif // TRUST_CRYPTO_CSPRNG_HH
