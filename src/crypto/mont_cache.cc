#include "crypto/mont_cache.hh"

#include <map>
#include <mutex>
#include <string>
#include <utility>

namespace trust::crypto {

namespace {

struct CacheEntry
{
    std::shared_ptr<const Montgomery> context;
    std::uint64_t lastUse = 0;
};

constexpr std::size_t kCapacity = 64;

std::mutex g_montCacheMutex;
std::map<std::string, CacheEntry> g_cache;
std::uint64_t g_useClock = 0;
std::uint64_t g_hits = 0;
std::uint64_t g_misses = 0;

/** Canonical map key: the minimal big-endian encoding of n. */
std::string
keyFor(const Bignum &modulus)
{
    const core::Bytes bytes = modulus.toBytes();
    return std::string(bytes.begin(), bytes.end());
}

} // namespace

std::shared_ptr<const Montgomery>
montgomeryFor(const Bignum &modulus)
{
    const std::string key = keyFor(modulus);
    {
        std::lock_guard<std::mutex> lock(g_montCacheMutex);
        auto it = g_cache.find(key);
        if (it != g_cache.end()) {
            ++g_hits;
            it->second.lastUse = ++g_useClock;
            return it->second.context;
        }
    }

    // Construct outside the lock: context setup is the expensive
    // part, and two threads racing on the same new modulus just do
    // the work twice (both results are identical and immutable).
    auto context = std::make_shared<const Montgomery>(modulus);

    std::lock_guard<std::mutex> lock(g_montCacheMutex);
    auto it = g_cache.find(key);
    if (it != g_cache.end()) {
        // Lost the construction race; keep the incumbent so every
        // caller shares one context.
        ++g_hits;
        it->second.lastUse = ++g_useClock;
        return it->second.context;
    }
    ++g_misses;
    if (g_cache.size() >= kCapacity) {
        auto victim = g_cache.begin();
        for (auto cand = g_cache.begin(); cand != g_cache.end();
             ++cand) {
            if (cand->second.lastUse < victim->second.lastUse)
                victim = cand;
        }
        g_cache.erase(victim);
    }
    g_cache.emplace(key, CacheEntry{context, ++g_useClock});
    return context;
}

std::size_t
montgomeryCacheSize()
{
    std::lock_guard<std::mutex> lock(g_montCacheMutex);
    return g_cache.size();
}

std::size_t
montgomeryCacheCapacity()
{
    return kCapacity;
}

std::uint64_t
montgomeryCacheHits()
{
    std::lock_guard<std::mutex> lock(g_montCacheMutex);
    return g_hits;
}

std::uint64_t
montgomeryCacheMisses()
{
    std::lock_guard<std::mutex> lock(g_montCacheMutex);
    return g_misses;
}

void
clearMontgomeryCache()
{
    std::lock_guard<std::mutex> lock(g_montCacheMutex);
    g_cache.clear();
    g_useClock = 0;
    g_hits = 0;
    g_misses = 0;
}

} // namespace trust::crypto
