#include "crypto/rsa.hh"

#include "core/logging.hh"
#include "crypto/primes.hh"
#include "crypto/sha256.hh"

namespace trust::crypto {

namespace {

/**
 * EMSA-PKCS1-v1_5-style encoding of a SHA-256 digest into @p len
 * bytes: 0x00 0x01 FF..FF 0x00 || digest-marker || digest.
 */
core::Bytes
emsaEncode(const core::Bytes &digest, std::size_t len)
{
    // 8-byte marker standing in for the DER AlgorithmIdentifier.
    static const core::Bytes kMarker = {0x53, 0x48, 0x41, 0x32,
                                        0x35, 0x36, 0x3a, 0x20};
    const std::size_t overhead = 3 + kMarker.size();
    TRUST_ASSERT(len >= digest.size() + overhead + 8,
                 "emsaEncode: modulus too small for digest");
    core::Bytes em;
    em.reserve(len);
    em.push_back(0x00);
    em.push_back(0x01);
    const std::size_t pad = len - digest.size() - overhead;
    em.insert(em.end(), pad, 0xff);
    em.push_back(0x00);
    em.insert(em.end(), kMarker.begin(), kMarker.end());
    em.insert(em.end(), digest.begin(), digest.end());
    return em;
}

} // namespace

core::Bytes
RsaPublicKey::serialize() const
{
    core::ByteWriter w;
    w.writeBytes(n.toBytes());
    w.writeBytes(e.toBytes());
    return w.take();
}

// trustlint: untrusted-input
std::optional<RsaPublicKey>
RsaPublicKey::deserialize(const core::Bytes &data)
{
    core::ByteReader r(data);
    RsaPublicKey key;
    key.n = Bignum::fromBytes(r.readBytes());
    key.e = Bignum::fromBytes(r.readBytes());
    if (!r.ok() || !r.atEnd() || key.n.isZero() || key.e.isZero())
        return std::nullopt;
    return key;
}

core::Bytes
RsaPublicKey::fingerprint() const
{
    return Sha256::digest(serialize());
}

core::Bytes
RsaPrivateKey::serialize() const
{
    core::ByteWriter w;
    for (const Bignum *v : {&n, &e, &d, &p, &q, &dP, &dQ, &qInv})
        w.writeBytes(v->toBytes());
    return w.take();
}

// trustlint: untrusted-input
std::optional<RsaPrivateKey>
RsaPrivateKey::deserialize(const core::Bytes &data)
{
    core::ByteReader r(data);
    RsaPrivateKey key;
    for (Bignum *v : {&key.n, &key.e, &key.d, &key.p, &key.q, &key.dP,
                      &key.dQ, &key.qInv})
        *v = Bignum::fromBytes(r.readBytes());
    if (!r.ok() || !r.atEnd() || key.n.isZero() || key.d.isZero())
        return std::nullopt;
    return key;
}

Bignum
RsaPrivateKey::apply(const Bignum &m) const
{
    // CRT: m1 = m^dP mod p, m2 = m^dQ mod q,
    // h = qInv*(m1 - m2) mod p, result = m2 + h*q.
    const Bignum m1 = Bignum::modExp(m % p, dP, p);
    const Bignum m2 = Bignum::modExp(m % q, dQ, q);
    Bignum diff;
    if (m1 >= m2) {
        diff = m1 - m2;
    } else {
        // (m1 - m2) mod p with unsigned types.
        diff = p - ((m2 - m1) % p);
        if (diff == p)
            diff = Bignum();
    }
    const Bignum h = (qInv * diff) % p;
    return m2 + h * q;
}

RsaKeyPair
rsaGenerate(std::size_t modulus_bits, Csprng &rng)
{
    TRUST_ASSERT(modulus_bits >= 128, "rsaGenerate: modulus too small");
    const Bignum e(65537);

    while (true) {
        const std::size_t half = modulus_bits / 2;
        const Bignum p = randomPrime(half, rng);
        const Bignum q = randomPrime(modulus_bits - half, rng);
        if (p == q)
            continue;

        const Bignum n = p * q;
        if (n.bitLength() != modulus_bits)
            continue;

        const Bignum p1 = p - Bignum(1);
        const Bignum q1 = q - Bignum(1);
        const Bignum lambda = (p1 * q1) / Bignum::gcd(p1, q1);

        const auto d = Bignum::modInverse(e, lambda);
        if (!d)
            continue; // gcd(e, lambda) != 1; rare

        RsaPrivateKey priv;
        priv.n = n;
        priv.e = e;
        priv.d = *d;
        priv.p = p;
        priv.q = q;
        priv.dP = *d % p1;
        priv.dQ = *d % q1;
        const auto q_inv = Bignum::modInverse(q, p);
        TRUST_ASSERT(q_inv.has_value(), "rsaGenerate: qInv must exist");
        priv.qInv = *q_inv;

        return {priv.publicKey(), priv};
    }
}

core::Bytes
rsaSign(const RsaPrivateKey &key, const core::Bytes &message)
{
    const core::Bytes em =
        emsaEncode(Sha256::digest(message), key.modulusBytes());
    const Bignum s = key.apply(Bignum::fromBytes(em));
    return s.toBytesPadded(key.modulusBytes());
}

bool
rsaVerify(const RsaPublicKey &key, const core::Bytes &message,
          const core::Bytes &signature)
{
    if (signature.size() != key.modulusBytes())
        return false;
    const Bignum s = Bignum::fromBytes(signature);
    if (s >= key.n)
        return false;
    const Bignum m = Bignum::modExp(s, key.e, key.n);
    const core::Bytes em = m.toBytesPadded(key.modulusBytes());
    const core::Bytes expected =
        emsaEncode(Sha256::digest(message), key.modulusBytes());
    return core::constantTimeEqual(em, expected);
}

core::Bytes
rsaEncrypt(const RsaPublicKey &key, const core::Bytes &message, Csprng &rng)
{
    const std::size_t k = key.modulusBytes();
    if (message.size() + 11 > k)
        TRUST_FATAL("rsaEncrypt: message too long for modulus");

    // EME-PKCS1-v1_5: 0x00 0x02 PS(nonzero random) 0x00 message.
    core::Bytes em;
    em.reserve(k);
    em.push_back(0x00);
    em.push_back(0x02);
    const std::size_t pad = k - message.size() - 3;
    for (std::size_t i = 0; i < pad; ++i) {
        std::uint8_t b;
        do {
            b = static_cast<std::uint8_t>(rng.randomBytes(1)[0]);
        } while (b == 0);
        em.push_back(b);
    }
    em.push_back(0x00);
    em.insert(em.end(), message.begin(), message.end());

    const Bignum c = Bignum::modExp(Bignum::fromBytes(em), key.e, key.n);
    return c.toBytesPadded(k);
}

std::optional<core::Bytes>
rsaDecrypt(const RsaPrivateKey &key, const core::Bytes &ciphertext)
{
    const std::size_t k = key.modulusBytes();
    if (ciphertext.size() != k)
        return std::nullopt;
    const Bignum c = Bignum::fromBytes(ciphertext);
    if (c >= key.n)
        return std::nullopt;

    const core::Bytes em = key.apply(c).toBytesPadded(k);
    if (em.size() < 11 || em[0] != 0x00 || em[1] != 0x02)
        return std::nullopt;
    std::size_t sep = 0;
    for (std::size_t i = 2; i < em.size(); ++i) {
        if (em[i] == 0x00) {
            sep = i;
            break;
        }
    }
    if (sep < 10) // at least 8 bytes of padding required
        return std::nullopt;
    return core::Bytes(em.begin() + static_cast<long>(sep) + 1, em.end());
}

} // namespace trust::crypto
