/**
 * @file
 * ChaCha20 stream cipher core (RFC 8439 block function).
 *
 * Backs the deterministic CSPRNG used by the FLock crypto processor
 * model; also usable directly as a stream cipher.
 */

#ifndef TRUST_CRYPTO_CHACHA20_HH
#define TRUST_CRYPTO_CHACHA20_HH

#include <array>
#include <cstdint>

#include "core/bytes.hh"

namespace trust::crypto {

/** ChaCha20 keystream generator / stream cipher. */
class ChaCha20
{
  public:
    static constexpr std::size_t keySize = 32;
    static constexpr std::size_t nonceSize = 12;
    static constexpr std::size_t blockSize = 64;

    /**
     * Construct with a 32-byte key, 12-byte nonce and initial block
     * counter. Fatal error on wrong key/nonce sizes.
     */
    ChaCha20(const core::Bytes &key, const core::Bytes &nonce,
             std::uint32_t counter = 0);

    /** Produce the next 64-byte keystream block. */
    std::array<std::uint8_t, blockSize> nextBlock();

    /** XOR @p data with the keystream (encrypt == decrypt). */
    core::Bytes process(const core::Bytes &data);

  private:
    std::uint32_t state_[16];
};

} // namespace trust::crypto

#endif // TRUST_CRYPTO_CHACHA20_HH
