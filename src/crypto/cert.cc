#include "crypto/cert.hh"

#include <algorithm>

#include "core/logging.hh"

namespace trust::crypto {

core::Bytes
Certificate::tbsBytes() const
{
    core::ByteWriter w;
    w.writeString(subject);
    w.writeU8(static_cast<std::uint8_t>(role));
    w.writeBytes(subjectKey.serialize());
    w.writeString(issuer);
    w.writeU64(serial);
    w.writeU64(notBefore);
    w.writeU64(notAfter);
    return w.take();
}

core::Bytes
Certificate::serialize() const
{
    core::ByteWriter w;
    w.writeBytes(tbsBytes());
    w.writeBytes(signature);
    return w.take();
}

// trustlint: untrusted-input
std::optional<Certificate>
Certificate::deserialize(const core::Bytes &data)
{
    core::ByteReader outer(data);
    const core::Bytes tbs = outer.readBytes();
    const core::Bytes sig = outer.readBytes();
    if (!outer.ok() || !outer.atEnd())
        return std::nullopt;

    core::ByteReader r(tbs);
    Certificate cert;
    cert.subject = r.readString();
    const std::uint8_t role = r.readU8();
    const auto key = RsaPublicKey::deserialize(r.readBytes());
    cert.issuer = r.readString();
    cert.serial = r.readU64();
    cert.notBefore = r.readU64();
    cert.notAfter = r.readU64();
    if (!r.ok() || !r.atEnd() || !key || role > 2)
        return std::nullopt;
    cert.role = static_cast<CertRole>(role);
    cert.subjectKey = *key;
    cert.signature = sig;
    return cert;
}

bool
Certificate::operator==(const Certificate &o) const
{
    return subject == o.subject && role == o.role &&
           subjectKey == o.subjectKey && issuer == o.issuer &&
           serial == o.serial && notBefore == o.notBefore &&
           notAfter == o.notAfter && signature == o.signature;
}

CertificateAuthority::CertificateAuthority(std::string name,
                                           std::size_t modulus_bits,
                                           Csprng &rng)
    : name_(std::move(name)), root_(rsaGenerate(modulus_bits, rng))
{
    rootCert_.subject = name_;
    rootCert_.role = CertRole::Authority;
    rootCert_.subjectKey = root_.pub;
    rootCert_.issuer = name_;
    rootCert_.serial = nextSerial_++;
    rootCert_.notBefore = 0;
    rootCert_.notAfter = ~0ULL;
    rootCert_.signature = rsaSign(root_.priv, rootCert_.tbsBytes());
}

Certificate
CertificateAuthority::issue(const std::string &subject, CertRole role,
                            const RsaPublicKey &subject_key,
                            std::uint64_t not_before,
                            std::uint64_t not_after)
{
    TRUST_ASSERT(role != CertRole::Authority,
                 "CA does not issue authority certificates");
    Certificate cert;
    cert.subject = subject;
    cert.role = role;
    cert.subjectKey = subject_key;
    cert.issuer = name_;
    cert.serial = nextSerial_++;
    cert.notBefore = not_before;
    cert.notAfter = not_after;
    cert.signature = rsaSign(root_.priv, cert.tbsBytes());
    return cert;
}

void
CertificateAuthority::revoke(std::uint64_t serial)
{
    if (!isRevoked(serial))
        revoked_.push_back(serial);
}

bool
CertificateAuthority::isRevoked(std::uint64_t serial) const
{
    return std::find(revoked_.begin(), revoked_.end(), serial) !=
           revoked_.end();
}

bool
verifyCertificate(const Certificate &cert, const RsaPublicKey &ca_key,
                  std::uint64_t now, CertRole expected_role)
{
    if (cert.role != expected_role)
        return false;
    if (now < cert.notBefore || now > cert.notAfter)
        return false;
    return rsaVerify(ca_key, cert.tbsBytes(), cert.signature);
}

} // namespace trust::crypto
