/**
 * @file
 * Arbitrary-precision unsigned integers for the RSA substrate.
 *
 * Little-endian 32-bit limbs, always normalized (no high zero limbs;
 * zero is the empty limb vector). Division is Knuth Algorithm D;
 * modular exponentiation uses Montgomery multiplication (CIOS) for
 * odd moduli, which covers every RSA operation.
 */

#ifndef TRUST_CRYPTO_BIGNUM_HH
#define TRUST_CRYPTO_BIGNUM_HH

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/bytes.hh"

namespace trust::crypto {

/** Unsigned arbitrary-precision integer. */
class Bignum
{
  public:
    /** Zero. */
    Bignum() = default;

    /** From a 64-bit value. */
    Bignum(std::uint64_t v); // NOLINT: implicit by design, like int

    /** Parse big-endian bytes (leading zeros permitted). */
    static Bignum fromBytes(const core::Bytes &big_endian);

    /** Parse a hex string (no 0x prefix; case-insensitive). */
    static Bignum fromHex(const std::string &hex);

    /** Minimal big-endian byte encoding (empty for zero). */
    core::Bytes toBytes() const;

    /**
     * Big-endian byte encoding left-padded with zeros to @p len.
     * Fatal if the value does not fit.
     */
    core::Bytes toBytesPadded(std::size_t len) const;

    /** Lowercase hex (no leading zeros; "0" for zero). */
    std::string toHex() const;

    bool isZero() const { return limbs_.empty(); }
    bool isOdd() const { return !limbs_.empty() && (limbs_[0] & 1); }

    /** Number of significant bits (0 for zero). */
    std::size_t bitLength() const;

    /** Value of bit @p i (LSB = bit 0). */
    bool bit(std::size_t i) const;

    /** Low 64 bits of the value. */
    std::uint64_t lowU64() const;

    /** Three-way compare. */
    int cmp(const Bignum &o) const;

    bool operator==(const Bignum &o) const { return limbs_ == o.limbs_; }
    bool operator!=(const Bignum &o) const { return !(*this == o); }
    bool operator<(const Bignum &o) const { return cmp(o) < 0; }
    bool operator<=(const Bignum &o) const { return cmp(o) <= 0; }
    bool operator>(const Bignum &o) const { return cmp(o) > 0; }
    bool operator>=(const Bignum &o) const { return cmp(o) >= 0; }

    Bignum operator+(const Bignum &o) const;

    /** Subtraction; fatal if @p o exceeds *this (unsigned type). */
    Bignum operator-(const Bignum &o) const;

    Bignum operator*(const Bignum &o) const;

    /** Quotient and remainder; fatal on division by zero. */
    static std::pair<Bignum, Bignum> divMod(const Bignum &num,
                                            const Bignum &den);

    Bignum operator/(const Bignum &o) const { return divMod(*this, o).first; }
    Bignum operator%(const Bignum &o) const
    {
        return divMod(*this, o).second;
    }

    /** Left shift by @p bits. */
    Bignum shifted(std::size_t bits) const;

    /** Right shift by @p bits. */
    Bignum shiftedRight(std::size_t bits) const;

    /** (base ^ exp) mod mod; fatal on zero modulus. */
    static Bignum modExp(const Bignum &base, const Bignum &exp,
                         const Bignum &mod);

    /** Greatest common divisor. */
    static Bignum gcd(Bignum a, Bignum b);

    /**
     * Multiplicative inverse of @p a modulo @p m, if it exists
     * (i.e. gcd(a, m) == 1).
     */
    static std::optional<Bignum> modInverse(const Bignum &a,
                                            const Bignum &m);

    /** Access to the limb vector (for tests). */
    const std::vector<std::uint32_t> &limbs() const { return limbs_; }

  private:
    void trim();

    std::vector<std::uint32_t> limbs_;

    friend class Montgomery;
};

/**
 * Montgomery multiplication context for a fixed odd modulus;
 * reused across the many multiplications of one modExp.
 */
class Montgomery
{
  public:
    /** Fatal if @p modulus is even or zero. */
    explicit Montgomery(const Bignum &modulus);

    /** (a * b * R^-1) mod n, inputs in Montgomery form. */
    Bignum mul(const Bignum &a, const Bignum &b) const;

    /** Convert into Montgomery form: a*R mod n. */
    Bignum toMont(const Bignum &a) const;

    /** Convert out of Montgomery form. */
    Bignum fromMont(const Bignum &a) const;

    /** Modular exponentiation using this context. */
    Bignum modExp(const Bignum &base, const Bignum &exp) const;

  private:
    Bignum n_;
    Bignum rr_;            // R^2 mod n
    std::uint32_t nPrime_; // -n^-1 mod 2^32
    std::size_t k_;        // limb count of n
};

} // namespace trust::crypto

#endif // TRUST_CRYPTO_BIGNUM_HH
