#include "crypto/chacha20.hh"

#include "core/logging.hh"

namespace trust::crypto {

namespace {

inline std::uint32_t
rotl(std::uint32_t x, int n)
{
    return (x << n) | (x >> (32 - n));
}

inline void
quarterRound(std::uint32_t &a, std::uint32_t &b, std::uint32_t &c,
             std::uint32_t &d)
{
    a += b; d ^= a; d = rotl(d, 16);
    c += d; b ^= c; b = rotl(b, 12);
    a += b; d ^= a; d = rotl(d, 8);
    c += d; b ^= c; b = rotl(b, 7);
}

inline std::uint32_t
loadLe32(const std::uint8_t *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           static_cast<std::uint32_t>(p[1]) << 8 |
           static_cast<std::uint32_t>(p[2]) << 16 |
           static_cast<std::uint32_t>(p[3]) << 24;
}

} // namespace

ChaCha20::ChaCha20(const core::Bytes &key, const core::Bytes &nonce,
                   std::uint32_t counter)
{
    if (key.size() != keySize)
        TRUST_FATAL("ChaCha20: key must be 32 bytes");
    if (nonce.size() != nonceSize)
        TRUST_FATAL("ChaCha20: nonce must be 12 bytes");

    // "expand 32-byte k"
    state_[0] = 0x61707865;
    state_[1] = 0x3320646e;
    state_[2] = 0x79622d32;
    state_[3] = 0x6b206574;
    for (int i = 0; i < 8; ++i)
        state_[4 + i] = loadLe32(key.data() + 4 * i);
    state_[12] = counter;
    for (int i = 0; i < 3; ++i)
        state_[13 + i] = loadLe32(nonce.data() + 4 * i);
}

std::array<std::uint8_t, ChaCha20::blockSize>
ChaCha20::nextBlock()
{
    std::uint32_t x[16];
    for (int i = 0; i < 16; ++i)
        x[i] = state_[i];

    for (int round = 0; round < 10; ++round) {
        // Column rounds.
        quarterRound(x[0], x[4], x[8], x[12]);
        quarterRound(x[1], x[5], x[9], x[13]);
        quarterRound(x[2], x[6], x[10], x[14]);
        quarterRound(x[3], x[7], x[11], x[15]);
        // Diagonal rounds.
        quarterRound(x[0], x[5], x[10], x[15]);
        quarterRound(x[1], x[6], x[11], x[12]);
        quarterRound(x[2], x[7], x[8], x[13]);
        quarterRound(x[3], x[4], x[9], x[14]);
    }

    std::array<std::uint8_t, blockSize> out;
    for (int i = 0; i < 16; ++i) {
        const std::uint32_t v = x[i] + state_[i];
        out[4 * i] = static_cast<std::uint8_t>(v);
        out[4 * i + 1] = static_cast<std::uint8_t>(v >> 8);
        out[4 * i + 2] = static_cast<std::uint8_t>(v >> 16);
        out[4 * i + 3] = static_cast<std::uint8_t>(v >> 24);
    }
    ++state_[12];
    return out;
}

core::Bytes
ChaCha20::process(const core::Bytes &data)
{
    core::Bytes out;
    out.reserve(data.size());
    std::array<std::uint8_t, blockSize> ks{};
    std::size_t ks_pos = blockSize;
    for (std::uint8_t byte : data) {
        if (ks_pos == blockSize) {
            ks = nextBlock();
            ks_pos = 0;
        }
        out.push_back(static_cast<std::uint8_t>(byte ^ ks[ks_pos++]));
    }
    return out;
}

} // namespace trust::crypto
