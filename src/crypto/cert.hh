/**
 * @file
 * X.509-like public-key certificates and the Certificate Authority.
 *
 * The paper's remote scenario (Fig. 8) assumes every Web Server and
 * every FLock module holds a public-key certificate signed by a CA
 * whose public key is provisioned into each FLock module. These
 * certificates are structurally X.509-like (subject, key, serial,
 * validity, issuer signature) but use the library's own encoding.
 */

#ifndef TRUST_CRYPTO_CERT_HH
#define TRUST_CRYPTO_CERT_HH

#include <optional>
#include <string>

#include "core/bytes.hh"
#include "crypto/csprng.hh"
#include "crypto/rsa.hh"

namespace trust::crypto {

/** Role of the certified party. */
enum class CertRole : std::uint8_t
{
    WebServer = 0,   ///< A remote web service (bank, e-mail, ...).
    FlockDevice = 1, ///< A FLock module's build-in device key.
    Authority = 2,   ///< The CA's self-signed root.
};

/** A CA-signed binding of a subject name to an RSA public key. */
struct Certificate
{
    std::string subject;      ///< Domain name or device id.
    CertRole role = CertRole::WebServer;
    RsaPublicKey subjectKey;  ///< The certified public key.
    std::string issuer;       ///< CA name.
    std::uint64_t serial = 0; ///< Issuer-unique serial number.
    std::uint64_t notBefore = 0; ///< Validity start (sim ticks).
    std::uint64_t notAfter = 0;  ///< Validity end (sim ticks).
    core::Bytes signature;    ///< CA signature over tbsBytes().

    /** The to-be-signed encoding (everything but the signature). */
    core::Bytes tbsBytes() const;

    /** Full encoding including the signature. */
    core::Bytes serialize() const;

    /** Parse; nullopt on malformed input. */
    static std::optional<Certificate> deserialize(const core::Bytes &data);

    bool operator==(const Certificate &o) const;
};

/**
 * The Certificate Authority server of Fig. 8.
 *
 * Owns the root key pair, issues certificates for web servers and
 * FLock devices, and can later revoke them (identity reset support).
 */
class CertificateAuthority
{
  public:
    /** Create a CA with a fresh root key of @p modulus_bits bits. */
    CertificateAuthority(std::string name, std::size_t modulus_bits,
                         Csprng &rng);

    const std::string &name() const { return name_; }

    /** Root public key, provisioned into every FLock module. */
    const RsaPublicKey &rootKey() const { return root_.pub; }

    /** Self-signed root certificate. */
    const Certificate &rootCertificate() const { return rootCert_; }

    /** Issue a certificate over @p subject_key. */
    Certificate issue(const std::string &subject, CertRole role,
                      const RsaPublicKey &subject_key,
                      std::uint64_t not_before = 0,
                      std::uint64_t not_after = ~0ULL);

    /** Revoke a serial number (e.g. a lost device's certificate). */
    void revoke(std::uint64_t serial);

    /** True if @p serial has been revoked. */
    bool isRevoked(std::uint64_t serial) const;

  private:
    std::string name_;
    RsaKeyPair root_;
    Certificate rootCert_;
    std::uint64_t nextSerial_ = 1;
    std::vector<std::uint64_t> revoked_;
};

/**
 * Verify @p cert against a trusted CA key: signature, validity
 * window at time @p now, and expected role.
 */
bool verifyCertificate(const Certificate &cert, const RsaPublicKey &ca_key,
                       std::uint64_t now, CertRole expected_role);

} // namespace trust::crypto

#endif // TRUST_CRYPTO_CERT_HH
