/**
 * @file
 * Process-wide cache of Montgomery multiplication contexts, keyed
 * by modulus.
 *
 * Building a `Montgomery` context costs one big division
 * (R^2 mod n) plus the Newton inversion of the low limb — work that
 * the serving hot path used to repeat on every signature, every
 * verification and every CRT half of every decryption, because
 * `Bignum::modExp` constructed a fresh context per call. A TRUST
 * web server exercises a tiny working set of moduli (its own p, q
 * and n, the CA key, and the fleet's repeatedly-verified client
 * keys), so a small bounded cache amortizes the setup across a
 * whole session.
 *
 * Thread safety: lookups and insertions are serialized by an
 * internal mutex; the returned contexts are immutable and safe to
 * share across threads (every `Montgomery` method is const and
 * pure). Eviction is LRU with a fixed capacity, so concurrent
 * fleets cannot grow the cache without bound.
 */

#ifndef TRUST_CRYPTO_MONT_CACHE_HH
#define TRUST_CRYPTO_MONT_CACHE_HH

#include <cstdint>
#include <memory>

#include "crypto/bignum.hh"

namespace trust::crypto {

/**
 * The shared Montgomery context for @p modulus, constructing and
 * caching it on first use. Fatal if @p modulus is even or zero
 * (same contract as the Montgomery constructor).
 */
std::shared_ptr<const Montgomery> montgomeryFor(const Bignum &modulus);

/** Number of contexts currently cached. */
std::size_t montgomeryCacheSize();

/** Maximum number of contexts kept before LRU eviction. */
std::size_t montgomeryCacheCapacity();

/** @{ @name Lifetime hit/miss counters (bench + test telemetry). */
std::uint64_t montgomeryCacheHits();
std::uint64_t montgomeryCacheMisses();
/** @} */

/** Drop every cached context (tests; in-flight shared_ptrs survive). */
void clearMontgomeryCache();

} // namespace trust::crypto

#endif // TRUST_CRYPTO_MONT_CACHE_HH
