#include "crypto/csprng.hh"

#include "core/logging.hh"
#include "crypto/sha256.hh"

namespace trust::crypto {

namespace {

core::Bytes
u64Bytes(std::uint64_t v)
{
    core::Bytes b(8);
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    return b;
}

} // namespace

Csprng::Csprng(const core::Bytes &seed)
    : key_(Sha256::digest(seed))
{
}

Csprng::Csprng(std::uint64_t seed)
    : Csprng(u64Bytes(seed))
{
}

void
Csprng::refill()
{
    // Fast key erasure: generate one batch of keystream, use the
    // first 32 bytes as the next key and the rest as output pool.
    core::Bytes nonce(ChaCha20::nonceSize, 0);
    for (int i = 0; i < 8; ++i)
        nonce[i] = static_cast<std::uint8_t>(blockCounter_ >> (8 * i));
    ++blockCounter_;

    ChaCha20 cipher(key_, nonce, 0);
    constexpr int batch_blocks = 8; // 512 bytes per refill
    core::Bytes batch;
    batch.reserve(batch_blocks * ChaCha20::blockSize);
    for (int i = 0; i < batch_blocks; ++i) {
        auto blk = cipher.nextBlock();
        batch.insert(batch.end(), blk.begin(), blk.end());
    }

    key_.assign(batch.begin(), batch.begin() + 32);
    pool_.assign(batch.begin() + 32, batch.end());
    poolPos_ = 0;
}

core::Bytes
Csprng::randomBytes(std::size_t n)
{
    core::Bytes out;
    out.reserve(n);
    while (out.size() < n) {
        if (poolPos_ >= pool_.size())
            refill();
        const std::size_t take =
            std::min(n - out.size(), pool_.size() - poolPos_);
        out.insert(out.end(), pool_.begin() + static_cast<long>(poolPos_),
                   pool_.begin() + static_cast<long>(poolPos_ + take));
        poolPos_ += take;
    }
    return out;
}

std::uint64_t
Csprng::randomU64()
{
    const core::Bytes b = randomBytes(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
    return v;
}

std::uint64_t
Csprng::randomBelow(std::uint64_t bound)
{
    TRUST_ASSERT(bound > 0, "randomBelow: bound must be positive");
    const std::uint64_t limit = ~0ULL - (~0ULL % bound);
    std::uint64_t x;
    do {
        x = randomU64();
    } while (x > limit);
    return x % bound;
}

void
Csprng::reseed(const core::Bytes &entropy)
{
    core::Bytes mix = key_;
    mix.insert(mix.end(), entropy.begin(), entropy.end());
    key_ = Sha256::digest(mix);
    pool_.clear();
    poolPos_ = 0;
}

} // namespace trust::crypto
