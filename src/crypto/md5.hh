/**
 * @file
 * MD5 (RFC 1321), from scratch.
 *
 * The paper's frame-hash engine suggests "MD5 or SHA256" for hashing
 * displayed frames; MD5 is provided as the cheap option for the
 * hardware cost comparison (it is NOT collision-resistant and the
 * default frame-hash configuration uses SHA-256).
 */

#ifndef TRUST_CRYPTO_MD5_HH
#define TRUST_CRYPTO_MD5_HH

#include <cstdint>

#include "core/bytes.hh"

namespace trust::crypto {

/** Streaming MD5 context. */
class Md5
{
  public:
    /** Digest size in bytes. */
    static constexpr std::size_t digestSize = 16;

    Md5();

    /** Absorb more message bytes. */
    void update(const std::uint8_t *data, std::size_t len);

    /** Absorb more message bytes. */
    void update(const core::Bytes &data);

    /** Finalize and return the 16-byte digest; context becomes reset. */
    core::Bytes finish();

    /** One-shot convenience. */
    static core::Bytes digest(const core::Bytes &data);

    /** One-shot over a string's bytes. */
    static core::Bytes digest(const std::string &data);

  private:
    void reset();
    void processBlock(const std::uint8_t *block);

    std::uint32_t h_[4];
    std::uint8_t buf_[64];
    std::size_t bufLen_ = 0;
    std::uint64_t totalLen_ = 0;
};

} // namespace trust::crypto

#endif // TRUST_CRYPTO_MD5_HH
