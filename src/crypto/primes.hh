/**
 * @file
 * Probabilistic primality testing and random prime generation for
 * RSA key generation inside the FLock crypto processor model.
 */

#ifndef TRUST_CRYPTO_PRIMES_HH
#define TRUST_CRYPTO_PRIMES_HH

#include "crypto/bignum.hh"
#include "crypto/csprng.hh"

namespace trust::crypto {

/**
 * Miller-Rabin primality test with @p rounds random bases.
 * Deterministically correct for small inputs; error probability
 * <= 4^-rounds for composites otherwise.
 */
bool isProbablePrime(const Bignum &n, Csprng &rng, int rounds = 24);

/**
 * Generate a random prime of exactly @p bits bits (top two bits set
 * so that products of two such primes have exactly 2*bits bits).
 */
Bignum randomPrime(std::size_t bits, Csprng &rng);

/** Uniform random Bignum in [0, bound). */
Bignum randomBelow(const Bignum &bound, Csprng &rng);

/** Uniform random Bignum with exactly @p bits bits (MSB set). */
Bignum randomBits(std::size_t bits, Csprng &rng);

} // namespace trust::crypto

#endif // TRUST_CRYPTO_PRIMES_HH
