#include "crypto/aes128.hh"

#include <cstring>

#include "core/logging.hh"

namespace trust::crypto {

namespace {

/** GF(2^8) multiply modulo the AES polynomial x^8+x^4+x^3+x+1. */
std::uint8_t
gfMul(std::uint8_t a, std::uint8_t b)
{
    std::uint8_t p = 0;
    for (int i = 0; i < 8; ++i) {
        if (b & 1)
            p ^= a;
        const bool hi = a & 0x80;
        a = static_cast<std::uint8_t>(a << 1);
        if (hi)
            a ^= 0x1b;
        b >>= 1;
    }
    return p;
}

struct SboxTables
{
    std::uint8_t sbox[256];
    std::uint8_t inv[256];

    SboxTables()
    {
        // Multiplicative inverses in GF(2^8) by brute force (one-time).
        std::uint8_t mulinv[256] = {};
        for (int a = 1; a < 256; ++a) {
            for (int b = 1; b < 256; ++b) {
                if (gfMul(static_cast<std::uint8_t>(a),
                          static_cast<std::uint8_t>(b)) == 1) {
                    mulinv[a] = static_cast<std::uint8_t>(b);
                    break;
                }
            }
        }
        for (int x = 0; x < 256; ++x) {
            const std::uint8_t s = mulinv[x];
            // Affine transform b' = b ^ rotl(b,1..4) ^ 0x63.
            std::uint8_t y = s;
            for (int r = 1; r <= 4; ++r)
                y ^= static_cast<std::uint8_t>((s << r) | (s >> (8 - r)));
            y ^= 0x63;
            sbox[x] = y;
        }
        for (int x = 0; x < 256; ++x)
            inv[sbox[x]] = static_cast<std::uint8_t>(x);
    }
};

const SboxTables &
tables()
{
    static const SboxTables t;
    return t;
}

} // namespace

Aes128::Aes128(const core::Bytes &key)
{
    if (key.size() != keySize)
        TRUST_FATAL("Aes128: key must be 16 bytes");

    const auto &t = tables();
    std::uint8_t w[176]; // 44 words
    std::memcpy(w, key.data(), 16);

    std::uint8_t rcon = 1;
    for (int i = 16; i < 176; i += 4) {
        std::uint8_t tmp[4];
        std::memcpy(tmp, w + i - 4, 4);
        if (i % 16 == 0) {
            // RotWord + SubWord + Rcon.
            const std::uint8_t first = tmp[0];
            tmp[0] = static_cast<std::uint8_t>(t.sbox[tmp[1]] ^ rcon);
            tmp[1] = t.sbox[tmp[2]];
            tmp[2] = t.sbox[tmp[3]];
            tmp[3] = t.sbox[first];
            rcon = gfMul(rcon, 2);
        }
        for (int j = 0; j < 4; ++j)
            w[i + j] = static_cast<std::uint8_t>(w[i - 16 + j] ^ tmp[j]);
    }

    for (int r = 0; r < 11; ++r)
        std::memcpy(roundKeys_[r].data(), w + 16 * r, 16);
}

void
Aes128::encryptBlock(std::uint8_t block[blockSize]) const
{
    const auto &t = tables();
    auto add_round_key = [&](int r) {
        for (int i = 0; i < 16; ++i)
            block[i] ^= roundKeys_[r][i];
    };
    auto sub_bytes = [&]() {
        for (int i = 0; i < 16; ++i)
            block[i] = t.sbox[block[i]];
    };
    auto shift_rows = [&]() {
        // State is column-major: byte (row, col) lives at col*4 + row.
        std::uint8_t tmp[16];
        std::memcpy(tmp, block, 16);
        for (int row = 1; row < 4; ++row)
            for (int col = 0; col < 4; ++col)
                block[col * 4 + row] = tmp[((col + row) % 4) * 4 + row];
    };
    auto mix_columns = [&]() {
        for (int col = 0; col < 4; ++col) {
            std::uint8_t *c = block + col * 4;
            const std::uint8_t a0 = c[0], a1 = c[1], a2 = c[2], a3 = c[3];
            c[0] = static_cast<std::uint8_t>(
                gfMul(a0, 2) ^ gfMul(a1, 3) ^ a2 ^ a3);
            c[1] = static_cast<std::uint8_t>(
                a0 ^ gfMul(a1, 2) ^ gfMul(a2, 3) ^ a3);
            c[2] = static_cast<std::uint8_t>(
                a0 ^ a1 ^ gfMul(a2, 2) ^ gfMul(a3, 3));
            c[3] = static_cast<std::uint8_t>(
                gfMul(a0, 3) ^ a1 ^ a2 ^ gfMul(a3, 2));
        }
    };

    add_round_key(0);
    for (int r = 1; r <= 9; ++r) {
        sub_bytes();
        shift_rows();
        mix_columns();
        add_round_key(r);
    }
    sub_bytes();
    shift_rows();
    add_round_key(10);
}

void
Aes128::decryptBlock(std::uint8_t block[blockSize]) const
{
    const auto &t = tables();
    auto add_round_key = [&](int r) {
        for (int i = 0; i < 16; ++i)
            block[i] ^= roundKeys_[r][i];
    };
    auto inv_sub_bytes = [&]() {
        for (int i = 0; i < 16; ++i)
            block[i] = t.inv[block[i]];
    };
    auto inv_shift_rows = [&]() {
        std::uint8_t tmp[16];
        std::memcpy(tmp, block, 16);
        for (int row = 1; row < 4; ++row)
            for (int col = 0; col < 4; ++col)
                block[((col + row) % 4) * 4 + row] = tmp[col * 4 + row];
    };
    auto inv_mix_columns = [&]() {
        for (int col = 0; col < 4; ++col) {
            std::uint8_t *c = block + col * 4;
            const std::uint8_t a0 = c[0], a1 = c[1], a2 = c[2], a3 = c[3];
            c[0] = static_cast<std::uint8_t>(gfMul(a0, 14) ^ gfMul(a1, 11) ^
                                             gfMul(a2, 13) ^ gfMul(a3, 9));
            c[1] = static_cast<std::uint8_t>(gfMul(a0, 9) ^ gfMul(a1, 14) ^
                                             gfMul(a2, 11) ^ gfMul(a3, 13));
            c[2] = static_cast<std::uint8_t>(gfMul(a0, 13) ^ gfMul(a1, 9) ^
                                             gfMul(a2, 14) ^ gfMul(a3, 11));
            c[3] = static_cast<std::uint8_t>(gfMul(a0, 11) ^ gfMul(a1, 13) ^
                                             gfMul(a2, 9) ^ gfMul(a3, 14));
        }
    };

    add_round_key(10);
    for (int r = 9; r >= 1; --r) {
        inv_shift_rows();
        inv_sub_bytes();
        add_round_key(r);
        inv_mix_columns();
    }
    inv_shift_rows();
    inv_sub_bytes();
    add_round_key(0);
}

core::Bytes
Aes128::ctrTransform(const core::Bytes &iv, const core::Bytes &data) const
{
    if (iv.size() != blockSize)
        TRUST_FATAL("Aes128::ctrTransform: IV must be 16 bytes");

    std::uint8_t counter[blockSize];
    std::memcpy(counter, iv.data(), blockSize);

    core::Bytes out;
    out.reserve(data.size());
    std::uint8_t keystream[blockSize];
    std::size_t ks_pos = blockSize;
    for (std::uint8_t byte : data) {
        if (ks_pos == blockSize) {
            std::memcpy(keystream, counter, blockSize);
            encryptBlock(keystream);
            // Big-endian increment of the counter block.
            for (int i = blockSize - 1; i >= 0; --i) {
                if (++counter[i] != 0)
                    break;
            }
            ks_pos = 0;
        }
        out.push_back(static_cast<std::uint8_t>(byte ^ keystream[ks_pos++]));
    }
    return out;
}

} // namespace trust::crypto
