#include "crypto/bignum.hh"

#include <algorithm>
#include <array>

#include "core/logging.hh"
#include "crypto/mont_cache.hh"

namespace trust::crypto {

namespace {

constexpr std::uint64_t kBase = 1ULL << 32;

int
hexNibble(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    TRUST_FATAL("Bignum::fromHex: non-hex character");
}

} // namespace

void
Bignum::trim()
{
    while (!limbs_.empty() && limbs_.back() == 0)
        limbs_.pop_back();
}

Bignum::Bignum(std::uint64_t v)
{
    if (v != 0) {
        limbs_.push_back(static_cast<std::uint32_t>(v));
        if (v >> 32)
            limbs_.push_back(static_cast<std::uint32_t>(v >> 32));
    }
}

Bignum
Bignum::fromBytes(const core::Bytes &big_endian)
{
    Bignum out;
    const std::size_t n = big_endian.size();
    out.limbs_.assign((n + 3) / 4, 0);
    for (std::size_t i = 0; i < n; ++i) {
        // Byte i (from the big end) contributes to limb/byte position.
        const std::size_t pos = n - 1 - i; // little-endian byte index
        out.limbs_[pos / 4] |=
            static_cast<std::uint32_t>(big_endian[i]) << (8 * (pos % 4));
    }
    out.trim();
    return out;
}

Bignum
Bignum::fromHex(const std::string &hex)
{
    Bignum out;
    for (char c : hex) {
        // out = out*16 + nibble
        const int nib = hexNibble(c);
        std::uint64_t carry = static_cast<std::uint64_t>(nib);
        for (auto &limb : out.limbs_) {
            const std::uint64_t cur =
                (static_cast<std::uint64_t>(limb) << 4) | carry;
            limb = static_cast<std::uint32_t>(cur);
            carry = cur >> 32;
        }
        if (carry)
            out.limbs_.push_back(static_cast<std::uint32_t>(carry));
    }
    out.trim();
    return out;
}

core::Bytes
Bignum::toBytes() const
{
    if (isZero())
        return {};
    core::Bytes out;
    const std::size_t bytes = (bitLength() + 7) / 8;
    out.resize(bytes);
    for (std::size_t i = 0; i < bytes; ++i) {
        const std::size_t pos = bytes - 1 - i; // little-endian byte index
        out[i] = static_cast<std::uint8_t>(
            limbs_[pos / 4] >> (8 * (pos % 4)));
    }
    return out;
}

core::Bytes
Bignum::toBytesPadded(std::size_t len) const
{
    core::Bytes minimal = toBytes();
    if (minimal.size() > len)
        TRUST_FATAL("Bignum::toBytesPadded: value does not fit");
    core::Bytes out(len - minimal.size(), 0);
    out.insert(out.end(), minimal.begin(), minimal.end());
    return out;
}

std::string
Bignum::toHex() const
{
    if (isZero())
        return "0";
    static const char digits[] = "0123456789abcdef";
    std::string out;
    bool leading = true;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
        for (int shift = 28; shift >= 0; shift -= 4) {
            const int nib = static_cast<int>((limbs_[i] >> shift) & 0xf);
            if (leading && nib == 0)
                continue;
            leading = false;
            out.push_back(digits[nib]);
        }
    }
    return out;
}

std::size_t
Bignum::bitLength() const
{
    if (isZero())
        return 0;
    const std::uint32_t top = limbs_.back();
    std::size_t bits = (limbs_.size() - 1) * 32;
    for (int i = 31; i >= 0; --i) {
        if (top >> i) {
            bits += static_cast<std::size_t>(i) + 1;
            break;
        }
    }
    return bits;
}

bool
Bignum::bit(std::size_t i) const
{
    const std::size_t limb = i / 32;
    if (limb >= limbs_.size())
        return false;
    return (limbs_[limb] >> (i % 32)) & 1;
}

std::uint64_t
Bignum::lowU64() const
{
    std::uint64_t v = 0;
    if (!limbs_.empty())
        v = limbs_[0];
    if (limbs_.size() > 1)
        v |= static_cast<std::uint64_t>(limbs_[1]) << 32;
    return v;
}

int
Bignum::cmp(const Bignum &o) const
{
    if (limbs_.size() != o.limbs_.size())
        return limbs_.size() < o.limbs_.size() ? -1 : 1;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
        if (limbs_[i] != o.limbs_[i])
            return limbs_[i] < o.limbs_[i] ? -1 : 1;
    }
    return 0;
}

Bignum
Bignum::operator+(const Bignum &o) const
{
    Bignum out;
    const std::size_t n = std::max(limbs_.size(), o.limbs_.size());
    out.limbs_.resize(n);
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t sum = carry;
        if (i < limbs_.size())
            sum += limbs_[i];
        if (i < o.limbs_.size())
            sum += o.limbs_[i];
        out.limbs_[i] = static_cast<std::uint32_t>(sum);
        carry = sum >> 32;
    }
    if (carry)
        out.limbs_.push_back(static_cast<std::uint32_t>(carry));
    return out;
}

Bignum
Bignum::operator-(const Bignum &o) const
{
    if (*this < o)
        TRUST_FATAL("Bignum: negative result in unsigned subtraction");
    Bignum out;
    out.limbs_.resize(limbs_.size());
    std::int64_t borrow = 0;
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        std::int64_t diff = static_cast<std::int64_t>(limbs_[i]) - borrow;
        if (i < o.limbs_.size())
            diff -= static_cast<std::int64_t>(o.limbs_[i]);
        if (diff < 0) {
            diff += static_cast<std::int64_t>(kBase);
            borrow = 1;
        } else {
            borrow = 0;
        }
        out.limbs_[i] = static_cast<std::uint32_t>(diff);
    }
    out.trim();
    return out;
}

Bignum
Bignum::operator*(const Bignum &o) const
{
    if (isZero() || o.isZero())
        return Bignum();
    Bignum out;
    out.limbs_.assign(limbs_.size() + o.limbs_.size(), 0);
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        std::uint64_t carry = 0;
        const std::uint64_t a = limbs_[i];
        for (std::size_t j = 0; j < o.limbs_.size(); ++j) {
            const std::uint64_t cur = out.limbs_[i + j] +
                                      a * o.limbs_[j] + carry;
            out.limbs_[i + j] = static_cast<std::uint32_t>(cur);
            carry = cur >> 32;
        }
        std::size_t pos = i + o.limbs_.size();
        while (carry) {
            const std::uint64_t cur = out.limbs_[pos] + carry;
            out.limbs_[pos] = static_cast<std::uint32_t>(cur);
            carry = cur >> 32;
            ++pos;
        }
    }
    out.trim();
    return out;
}

std::pair<Bignum, Bignum>
Bignum::divMod(const Bignum &num, const Bignum &den)
{
    if (den.isZero())
        TRUST_FATAL("Bignum: division by zero");
    if (num < den)
        return {Bignum(), num};
    if (den.limbs_.size() == 1) {
        // Short division by a single limb.
        const std::uint64_t d = den.limbs_[0];
        Bignum q;
        q.limbs_.resize(num.limbs_.size());
        std::uint64_t rem = 0;
        for (std::size_t i = num.limbs_.size(); i-- > 0;) {
            const std::uint64_t cur = (rem << 32) | num.limbs_[i];
            q.limbs_[i] = static_cast<std::uint32_t>(cur / d);
            rem = cur % d;
        }
        q.trim();
        return {q, Bignum(rem)};
    }

    // Knuth Algorithm D. Normalize so the divisor's top limb has its
    // high bit set.
    const std::size_t n = den.limbs_.size();
    const std::size_t m = num.limbs_.size() - n;

    int shift = 0;
    while (!((den.limbs_.back() << shift) & 0x80000000u))
        ++shift;

    const Bignum u_norm = num.shifted(static_cast<std::size_t>(shift));
    const Bignum v_norm = den.shifted(static_cast<std::size_t>(shift));

    std::vector<std::uint32_t> u = u_norm.limbs_;
    u.resize(num.limbs_.size() + 1, 0); // u has m+n+1 limbs
    const std::vector<std::uint32_t> &v = v_norm.limbs_;

    Bignum q;
    q.limbs_.assign(m + 1, 0);

    for (std::size_t j = m + 1; j-- > 0;) {
        // Estimate q_hat from the top two limbs of the current
        // remainder against the top limb of the divisor.
        const std::uint64_t top =
            (static_cast<std::uint64_t>(u[j + n]) << 32) | u[j + n - 1];
        std::uint64_t q_hat = top / v[n - 1];
        std::uint64_t r_hat = top % v[n - 1];
        while (q_hat >= kBase ||
               q_hat * v[n - 2] > ((r_hat << 32) | u[j + n - 2])) {
            --q_hat;
            r_hat += v[n - 1];
            if (r_hat >= kBase)
                break;
        }

        // Multiply-and-subtract: u[j..j+n] -= q_hat * v.
        std::int64_t borrow = 0;
        std::uint64_t carry = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint64_t prod = q_hat * v[i] + carry;
            carry = prod >> 32;
            std::int64_t diff = static_cast<std::int64_t>(u[i + j]) -
                                static_cast<std::int64_t>(prod & 0xffffffff) -
                                borrow;
            if (diff < 0) {
                diff += static_cast<std::int64_t>(kBase);
                borrow = 1;
            } else {
                borrow = 0;
            }
            u[i + j] = static_cast<std::uint32_t>(diff);
        }
        std::int64_t diff = static_cast<std::int64_t>(u[j + n]) -
                            static_cast<std::int64_t>(carry) - borrow;
        bool negative = diff < 0;
        if (negative)
            diff += static_cast<std::int64_t>(kBase);
        u[j + n] = static_cast<std::uint32_t>(diff);

        // Add back if the estimate was one too large.
        if (negative) {
            --q_hat;
            std::uint64_t add_carry = 0;
            for (std::size_t i = 0; i < n; ++i) {
                const std::uint64_t sum = static_cast<std::uint64_t>(
                                              u[i + j]) +
                                          v[i] + add_carry;
                u[i + j] = static_cast<std::uint32_t>(sum);
                add_carry = sum >> 32;
            }
            u[j + n] = static_cast<std::uint32_t>(u[j + n] + add_carry);
        }

        q.limbs_[j] = static_cast<std::uint32_t>(q_hat);
    }

    q.trim();
    Bignum rem;
    rem.limbs_.assign(u.begin(), u.begin() + static_cast<long>(n));
    rem.trim();
    return {q, rem.shiftedRight(static_cast<std::size_t>(shift))};
}

Bignum
Bignum::shifted(std::size_t bits) const
{
    if (isZero() || bits == 0)
        return *this;
    const std::size_t limb_shift = bits / 32;
    const std::size_t bit_shift = bits % 32;
    Bignum out;
    out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        const std::uint64_t v = static_cast<std::uint64_t>(limbs_[i])
                                << bit_shift;
        out.limbs_[i + limb_shift] |= static_cast<std::uint32_t>(v);
        out.limbs_[i + limb_shift + 1] |=
            static_cast<std::uint32_t>(v >> 32);
    }
    out.trim();
    return out;
}

Bignum
Bignum::shiftedRight(std::size_t bits) const
{
    const std::size_t limb_shift = bits / 32;
    if (limb_shift >= limbs_.size())
        return Bignum();
    const std::size_t bit_shift = bits % 32;
    Bignum out;
    out.limbs_.assign(limbs_.size() - limb_shift, 0);
    for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
        std::uint64_t v = static_cast<std::uint64_t>(
                              limbs_[i + limb_shift]) >>
                          bit_shift;
        if (bit_shift && i + limb_shift + 1 < limbs_.size())
            v |= static_cast<std::uint64_t>(limbs_[i + limb_shift + 1])
                 << (32 - bit_shift);
        out.limbs_[i] = static_cast<std::uint32_t>(v);
    }
    out.trim();
    return out;
}

Bignum
Bignum::modExp(const Bignum &base, const Bignum &exp, const Bignum &mod)
{
    if (mod.isZero())
        TRUST_FATAL("Bignum::modExp: zero modulus");
    if (mod == Bignum(1))
        return Bignum();
    if (mod.isOdd()) {
        // Contexts are shared through the process-wide cache: RSA
        // workloads hit the same handful of moduli over and over,
        // and the R^2-mod-n setup dominates small exponentiations.
        return montgomeryFor(mod)->modExp(base, exp);
    }
    // Generic square-and-multiply for even moduli (rare path).
    Bignum result(1);
    Bignum b = base % mod;
    const std::size_t bits = exp.bitLength();
    for (std::size_t i = bits; i-- > 0;) {
        result = (result * result) % mod;
        if (exp.bit(i))
            result = (result * b) % mod;
    }
    return result;
}

Bignum
Bignum::gcd(Bignum a, Bignum b)
{
    while (!b.isZero()) {
        Bignum r = a % b;
        a = std::move(b);
        b = std::move(r);
    }
    return a;
}

std::optional<Bignum>
Bignum::modInverse(const Bignum &a, const Bignum &m)
{
    if (m.isZero())
        TRUST_FATAL("Bignum::modInverse: zero modulus");

    // Extended Euclid tracking only the coefficient of a, with an
    // explicit sign: old_s*a === old_r (mod m).
    Bignum old_r = a % m, r = m;
    Bignum old_s(1), s;
    bool old_s_neg = false, s_neg = false;

    while (!r.isZero()) {
        auto [q, rem] = Bignum::divMod(old_r, r);

        // (old_s, s) = (s, old_s - q*s) with signed arithmetic.
        Bignum qs = q * s;
        Bignum new_s;
        bool new_s_neg;
        if (old_s_neg == s_neg) {
            // Same sign: old_s - q*s may flip sign.
            if (old_s >= qs) {
                new_s = old_s - qs;
                new_s_neg = old_s_neg;
            } else {
                new_s = qs - old_s;
                new_s_neg = !old_s_neg;
            }
        } else {
            // Opposite signs: magnitudes add, sign of old_s.
            new_s = old_s + qs;
            new_s_neg = old_s_neg;
        }

        old_r = std::move(r);
        r = std::move(rem);
        old_s = std::move(s);
        old_s_neg = s_neg;
        s = std::move(new_s);
        s_neg = new_s_neg;
    }

    if (old_r != Bignum(1))
        return std::nullopt; // not coprime

    Bignum inv = old_s % m;
    if (old_s_neg && !inv.isZero())
        inv = m - inv;
    return inv;
}

Montgomery::Montgomery(const Bignum &modulus)
    : n_(modulus), k_(modulus.limbs_.size())
{
    if (n_.isZero() || !n_.isOdd())
        TRUST_FATAL("Montgomery: modulus must be odd and nonzero");

    // n' = -n^-1 mod 2^32 via Newton iteration on the low limb.
    const std::uint32_t n0 = n_.limbs_[0];
    std::uint32_t x = n0; // correct mod 2^3
    for (int i = 0; i < 5; ++i)
        x *= 2 - n0 * x; // doubles correct bits each step
    nPrime_ = static_cast<std::uint32_t>(0u - x);

    // R^2 mod n where R = 2^(32k).
    rr_ = Bignum(1).shifted(64 * k_) % n_;
}

Bignum
Montgomery::mul(const Bignum &a, const Bignum &b) const
{
    // CIOS (coarsely integrated operand scanning).
    std::vector<std::uint64_t> t(k_ + 2, 0);
    for (std::size_t i = 0; i < k_; ++i) {
        const std::uint64_t ai =
            i < a.limbs_.size() ? a.limbs_[i] : 0;

        // t += ai * b
        std::uint64_t carry = 0;
        for (std::size_t j = 0; j < k_; ++j) {
            const std::uint64_t bj =
                j < b.limbs_.size() ? b.limbs_[j] : 0;
            const std::uint64_t cur = t[j] + ai * bj + carry;
            t[j] = cur & 0xffffffff;
            carry = cur >> 32;
        }
        std::uint64_t sum = t[k_] + carry;
        t[k_] = sum & 0xffffffff;
        t[k_ + 1] += sum >> 32;

        // m = t[0] * n' mod 2^32; t += m * n  (makes t[0] == 0)
        const std::uint64_t m =
            (t[0] * nPrime_) & 0xffffffff;
        carry = 0;
        for (std::size_t j = 0; j < k_; ++j) {
            const std::uint64_t cur = t[j] + m * n_.limbs_[j] + carry;
            t[j] = cur & 0xffffffff;
            carry = cur >> 32;
        }
        sum = t[k_] + carry;
        t[k_] = sum & 0xffffffff;
        t[k_ + 1] += sum >> 32;

        // Shift t down one limb.
        for (std::size_t j = 0; j <= k_; ++j)
            t[j] = t[j + 1];
        t[k_ + 1] = 0;
    }

    Bignum out;
    out.limbs_.resize(k_ + 1);
    for (std::size_t j = 0; j <= k_; ++j)
        out.limbs_[j] = static_cast<std::uint32_t>(t[j]);
    out.trim();
    if (out >= n_)
        out = out - n_;
    return out;
}

Bignum
Montgomery::toMont(const Bignum &a) const
{
    return mul(a % n_, rr_);
}

Bignum
Montgomery::fromMont(const Bignum &a) const
{
    return mul(a, Bignum(1));
}

Bignum
Montgomery::modExp(const Bignum &base, const Bignum &exp) const
{
    if (n_ == Bignum(1))
        return Bignum();
    const std::size_t bits = exp.bitLength();
    const Bignum b = toMont(base);

    // Small exponents (the RSA public e = 65537 path): the window
    // precomputation would cost more than it saves, so fall back to
    // plain left-to-right square-and-multiply.
    if (bits <= 32) {
        Bignum result = toMont(Bignum(1));
        for (std::size_t i = bits; i-- > 0;) {
            result = mul(result, result);
            if (exp.bit(i))
                result = mul(result, b);
        }
        return fromMont(result);
    }

    // Fixed 4-bit windows for private exponents: 14 precomputed
    // powers buy one multiplication per window instead of an
    // expected one per two bits (~25% fewer multiplications on a
    // random exponent). Not constant-time, like the rest of this
    // simulation-grade library.
    std::array<Bignum, 16> pow;
    pow[0] = toMont(Bignum(1));
    pow[1] = b;
    for (std::size_t i = 2; i < pow.size(); ++i)
        pow[i] = mul(pow[i - 1], b);

    const std::size_t windows = (bits + 3) / 4;
    // The top window contains the most significant set bit, so its
    // digit is never zero and seeds the accumulator directly.
    auto digitAt = [&](std::size_t w) {
        std::size_t digit = 0;
        for (std::size_t j = 4; j-- > 0;) {
            digit <<= 1;
            if (exp.bit(w * 4 + j))
                digit |= 1;
        }
        return digit;
    };
    Bignum result = pow[digitAt(windows - 1)];
    for (std::size_t w = windows - 1; w-- > 0;) {
        for (int s = 0; s < 4; ++s)
            result = mul(result, result);
        const std::size_t digit = digitAt(w);
        if (digit)
            result = mul(result, pow[digit]);
    }
    return fromMont(result);
}

} // namespace trust::crypto
