#include "crypto/md5.hh"

#include <cmath>
#include <cstring>

namespace trust::crypto {

namespace {

/** Per-step left-rotation amounts (RFC 1321). */
constexpr int kShift[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5,  9, 14, 20, 5,  9, 14, 20, 5,  9, 14, 20, 5,  9, 14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
};

/**
 * Sine-derived constants K[i] = floor(|sin(i+1)| * 2^32), computed
 * once at startup; IEEE-754 doubles reproduce the RFC table exactly.
 */
const std::uint32_t *
sineTable()
{
    static std::uint32_t k[64];
    static bool init = false;
    if (!init) {
        for (int i = 0; i < 64; ++i)
            k[i] = static_cast<std::uint32_t>(
                std::floor(std::fabs(std::sin(i + 1.0)) * 4294967296.0));
        init = true;
    }
    return k;
}

inline std::uint32_t
rotl(std::uint32_t x, int n)
{
    return (x << n) | (x >> (32 - n));
}

} // namespace

Md5::Md5()
{
    reset();
}

void
Md5::reset()
{
    h_[0] = 0x67452301;
    h_[1] = 0xefcdab89;
    h_[2] = 0x98badcfe;
    h_[3] = 0x10325476;
    bufLen_ = 0;
    totalLen_ = 0;
}

void
Md5::processBlock(const std::uint8_t *block)
{
    const std::uint32_t *k = sineTable();
    std::uint32_t m[16];
    for (int i = 0; i < 16; ++i) {
        m[i] = static_cast<std::uint32_t>(block[4 * i]) |
               static_cast<std::uint32_t>(block[4 * i + 1]) << 8 |
               static_cast<std::uint32_t>(block[4 * i + 2]) << 16 |
               static_cast<std::uint32_t>(block[4 * i + 3]) << 24;
    }

    std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3];

    for (int i = 0; i < 64; ++i) {
        std::uint32_t f;
        int g;
        if (i < 16) {
            f = (b & c) | (~b & d);
            g = i;
        } else if (i < 32) {
            f = (d & b) | (~d & c);
            g = (5 * i + 1) % 16;
        } else if (i < 48) {
            f = b ^ c ^ d;
            g = (3 * i + 5) % 16;
        } else {
            f = c ^ (b | ~d);
            g = (7 * i) % 16;
        }
        const std::uint32_t tmp = d;
        d = c;
        c = b;
        b = b + rotl(a + f + k[i] + m[g], kShift[i]);
        a = tmp;
    }

    h_[0] += a;
    h_[1] += b;
    h_[2] += c;
    h_[3] += d;
}

void
Md5::update(const std::uint8_t *data, std::size_t len)
{
    totalLen_ += len;
    while (len > 0) {
        const std::size_t take = std::min(len, sizeof(buf_) - bufLen_);
        std::memcpy(buf_ + bufLen_, data, take);
        bufLen_ += take;
        data += take;
        len -= take;
        if (bufLen_ == sizeof(buf_)) {
            processBlock(buf_);
            bufLen_ = 0;
        }
    }
}

void
Md5::update(const core::Bytes &data)
{
    update(data.data(), data.size());
}

core::Bytes
Md5::finish()
{
    const std::uint64_t bit_len = totalLen_ * 8;

    const std::uint8_t pad80 = 0x80;
    update(&pad80, 1);
    const std::uint8_t zero = 0;
    while (bufLen_ != 56)
        update(&zero, 1);
    std::uint8_t len_le[8];
    for (int i = 0; i < 8; ++i)
        len_le[i] = static_cast<std::uint8_t>(bit_len >> (8 * i));
    update(len_le, 8);

    core::Bytes out(digestSize);
    for (int i = 0; i < 4; ++i) {
        out[4 * i] = static_cast<std::uint8_t>(h_[i]);
        out[4 * i + 1] = static_cast<std::uint8_t>(h_[i] >> 8);
        out[4 * i + 2] = static_cast<std::uint8_t>(h_[i] >> 16);
        out[4 * i + 3] = static_cast<std::uint8_t>(h_[i] >> 24);
    }
    reset();
    return out;
}

core::Bytes
Md5::digest(const core::Bytes &data)
{
    Md5 ctx;
    ctx.update(data);
    return ctx.finish();
}

core::Bytes
Md5::digest(const std::string &data)
{
    return digest(core::toBytes(data));
}

} // namespace trust::crypto
