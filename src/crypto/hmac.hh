/**
 * @file
 * HMAC-SHA256 (RFC 2104 / FIPS 198-1).
 *
 * The TRUST protocol MACs every message under either a party's
 * long-term key (registration) or the per-session key (continuous
 * authentication).
 */

#ifndef TRUST_CRYPTO_HMAC_HH
#define TRUST_CRYPTO_HMAC_HH

#include "core/bytes.hh"

namespace trust::crypto {

/** Compute HMAC-SHA256(key, message); returns a 32-byte tag. */
core::Bytes hmacSha256(const core::Bytes &key, const core::Bytes &message);

/** Verify an HMAC-SHA256 tag in constant time. */
bool hmacSha256Verify(const core::Bytes &key, const core::Bytes &message,
                      const core::Bytes &tag);

/**
 * HKDF-style key derivation (extract+expand with HMAC-SHA256),
 * used to derive session subkeys from the negotiated session key.
 */
core::Bytes hkdfSha256(const core::Bytes &ikm, const core::Bytes &salt,
                       const core::Bytes &info, std::size_t length);

} // namespace trust::crypto

#endif // TRUST_CRYPTO_HMAC_HH
