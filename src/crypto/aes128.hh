/**
 * @file
 * AES-128 block cipher (FIPS 197) plus CTR mode.
 *
 * Models the symmetric engine of the FLock crypto processor; session
 * traffic in the continuous-authentication protocol is encrypted
 * with AES-128-CTR under a key derived from the negotiated session
 * key. The S-box is generated algebraically (GF(2^8) inverse +
 * affine map) rather than hard-coded.
 */

#ifndef TRUST_CRYPTO_AES128_HH
#define TRUST_CRYPTO_AES128_HH

#include <array>
#include <cstdint>

#include "core/bytes.hh"

namespace trust::crypto {

/** AES-128 block cipher. */
class Aes128
{
  public:
    static constexpr std::size_t keySize = 16;
    static constexpr std::size_t blockSize = 16;

    /** Construct from a 16-byte key; fatal on wrong size. */
    explicit Aes128(const core::Bytes &key);

    /** Encrypt one 16-byte block in place. */
    void encryptBlock(std::uint8_t block[blockSize]) const;

    /** Decrypt one 16-byte block in place. */
    void decryptBlock(std::uint8_t block[blockSize]) const;

    /**
     * CTR-mode keystream transform: encrypts or decrypts @p data
     * under a 16-byte IV/initial counter block (encrypt==decrypt).
     */
    core::Bytes ctrTransform(const core::Bytes &iv,
                             const core::Bytes &data) const;

  private:
    std::array<std::array<std::uint8_t, 16>, 11> roundKeys_;
};

} // namespace trust::crypto

#endif // TRUST_CRYPTO_AES128_HH
